//! Cross-shard rebalancing: planning object migrations that equalize
//! per-shard live volumes.
//!
//! Theorem 2.1 keeps every shard within `(1+ε)·V_i`, but nothing bounds the
//! *spread* of the `V_i` themselves — a skewed delete pattern under hash
//! routing leaves one shard holding most of the volume while the rest idle.
//! The planner here computes a migration set (executed by
//! [`Engine::rebalance`](crate::Engine::rebalance) as
//! delete-on-source/insert-on-target transfers at a quiesce barrier) that
//! brings every donor shard down to the mean: greedy largest-first, so the
//! object count moved is small and each transfer's `f(w)` cost is paid by
//! as few objects as possible.
//!
//! The residual imbalance after a plan is bounded by object granularity:
//! every donor ends within its largest unmovable object of the mean, so
//! `max V_i / mean V_i ≤ 1 + ∆/mean` — far below the rebalance targets
//! anyone sets in practice (∆ ≪ per-shard volume).

use realloc_common::ObjectId;

/// Knobs for [`Engine::rebalance`](crate::Engine::rebalance) and
/// [`Engine::rebalance_online`](crate::Engine::rebalance_online).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceOptions {
    /// Run the per-shard Theorem 2.7 defragmenter after migrating, with
    /// this footprint slack `ε` (`0 < ε ≤ 1/2`): each shard computes the
    /// cost-oblivious compaction schedule over its post-migration layout
    /// (objects sorted by id), records the schedule's moves in its ledger,
    /// and reports the space bound. `None` skips the pass.
    pub defrag_eps: Option<f64>,
    /// Online mode only: the most objects one
    /// [`rebalance_step`](crate::Engine::rebalance_step) migrates. This is
    /// the knob that trades convergence speed for per-step serving stall —
    /// a step's latency is bounded by re-homing this many objects (plus
    /// draining whatever the involved shards had queued). Barrier mode
    /// ignores it and executes the whole plan at once. Default 64.
    pub batch_objects: usize,
}

impl Default for RebalanceOptions {
    fn default() -> Self {
        RebalanceOptions {
            defrag_eps: None,
            batch_objects: 64,
        }
    }
}

impl RebalanceOptions {
    /// Options with the defrag pass enabled at slack `eps`.
    pub fn with_defrag(eps: f64) -> Self {
        RebalanceOptions {
            defrag_eps: Some(eps),
            ..RebalanceOptions::default()
        }
    }

    /// These options with the online per-step migration bound set to
    /// `objects` (clamped to at least 1).
    pub fn batched(mut self, objects: usize) -> Self {
        self.batch_objects = objects.max(1);
        self
    }
}

/// How a rebalance was executed (reported in
/// [`RebalanceReport::mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceMode {
    /// [`Engine::rebalance`](crate::Engine::rebalance): the whole fleet
    /// quiesced, the full migration plan executed inside one barrier.
    Barrier,
    /// [`Engine::rebalance_online`](crate::Engine::rebalance_online): the
    /// plan executed in bounded batches interleaved with serving.
    Online,
}

impl std::fmt::Display for RebalanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RebalanceMode::Barrier => "barrier",
            RebalanceMode::Online => "online",
        })
    }
}

/// What [`Engine::rebalance_online`](crate::Engine::rebalance_online)
/// planned — the migration set the now-active session will execute
/// incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlinePlan {
    /// Objects the plan re-homes.
    pub objects: u64,
    /// Total volume of those objects, in cells.
    pub volume: u64,
    /// Bounded batches the session will execute
    /// (`⌈objects / batch_objects⌉`).
    pub batches: u64,
}

/// A driver-side auto-rebalance trigger: fire when the observed
/// [`imbalance_ratio`](crate::EngineStats::imbalance_ratio) has exceeded
/// `tau` for `k` consecutive observations, then back off for `hysteresis`
/// observations after a rebalance completes (so the freshly balanced fleet
/// is not immediately re-measured mid-settling and thrashed).
///
/// The policy is a pure observation state machine — it never touches an
/// engine itself. Feed it imbalance ratios with [`observe`](Self::observe);
/// when that returns `true`, trigger a rebalance and report it back with
/// [`note_rebalanced`](Self::note_rebalanced). Wire it into an
/// [`Engine`](crate::Engine) with
/// [`set_auto_rebalance`](crate::Engine::set_auto_rebalance) and the engine
/// does both at its own barriers.
///
/// ```
/// use realloc_engine::RebalancePolicy;
///
/// // Fire after 2 consecutive observations above 1.5; then back off for
/// // 1 observation.
/// let mut policy = RebalancePolicy::new(1.5, 2, 1);
/// assert!(!policy.observe(2.0)); // 1st breach: not yet
/// assert!(!policy.observe(1.2)); // back under τ: streak resets
/// assert!(!policy.observe(1.8)); // 1st of a new streak
/// assert!(policy.observe(1.9)); // 2nd consecutive breach: fire
///
/// policy.note_rebalanced(); // rebalance ran: hysteresis kicks in
/// assert!(!policy.observe(9.0)); // ignored (cooling down)
/// assert!(!policy.observe(9.0)); // 1st counted breach again
/// assert!(policy.observe(9.0)); // 2nd: fire again
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RebalancePolicy {
    /// Imbalance threshold `τ` (`max V_i / mean V_i`; 1.0 is perfectly
    /// balanced, so `τ > 1`).
    pub tau: f64,
    /// Consecutive observations above `τ` required to fire. Values above 1
    /// keep a single noisy barrier snapshot from triggering migrations.
    pub k: usize,
    /// Observations ignored after a rebalance completes.
    pub hysteresis: usize,
    /// Breaches in the current consecutive streak.
    streak: usize,
    /// Remaining post-rebalance observations to ignore.
    cooldown: usize,
}

impl Default for RebalancePolicy {
    /// `τ = 1.5`, `k = 3`, `hysteresis = 2`.
    fn default() -> Self {
        RebalancePolicy::new(1.5, 3, 2)
    }
}

impl RebalancePolicy {
    /// A policy firing after `k` consecutive observations above `tau`,
    /// ignoring `hysteresis` observations after each rebalance.
    ///
    /// # Panics
    /// Panics if `tau <= 1.0` (every fleet would always be "imbalanced") or
    /// `k == 0` (the policy could fire without ever observing).
    pub fn new(tau: f64, k: usize, hysteresis: usize) -> Self {
        assert!(tau > 1.0, "τ must exceed 1.0 (perfect balance), got {tau}");
        assert!(k > 0, "k must be positive");
        RebalancePolicy {
            tau,
            k,
            hysteresis,
            streak: 0,
            cooldown: 0,
        }
    }

    /// Feeds one imbalance observation; returns whether a rebalance should
    /// fire now. Observations during the post-rebalance cooldown are
    /// ignored (and do not extend a streak).
    pub fn observe(&mut self, imbalance: f64) -> bool {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.streak = 0;
            return false;
        }
        if imbalance > self.tau {
            self.streak += 1;
            if self.streak >= self.k {
                self.streak = 0;
                return true;
            }
        } else {
            self.streak = 0;
        }
        false
    }

    /// Tells the policy a rebalance ran: the next `hysteresis` observations
    /// are ignored and the streak restarts.
    pub fn note_rebalanced(&mut self) {
        self.cooldown = self.hysteresis;
        self.streak = 0;
    }

    /// Breaches in the current consecutive streak (diagnostics).
    pub fn streak(&self) -> usize {
        self.streak
    }

    /// Observations still to be ignored post-rebalance (diagnostics).
    pub fn cooldown(&self) -> usize {
        self.cooldown
    }
}

/// One planned cross-shard transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Migration {
    pub id: ObjectId,
    pub size: u64,
    pub from: usize,
    pub to: usize,
}

/// What one shard's Theorem 2.7 defrag pass reported.
#[derive(Debug, Clone, PartialEq)]
pub struct DefragSummary {
    /// The shard that ran the pass.
    pub shard: usize,
    /// Live objects sorted.
    pub objects: usize,
    /// Total moves in the schedule.
    pub total_moves: u64,
    /// Largest address (exclusive) the schedule writes.
    pub peak_space: u64,
    /// The `(1+ε)V` array budget.
    pub budget: u64,
    /// Whether the theorem's `(1+ε)V + ∆` space bound held.
    pub within_budget: bool,
    /// Whether the schedule's copies, *performed* on the shard's real
    /// substrate bytes (in a sandbox), landed every object byte-intact at
    /// its promised placement. `None` when the shard has no substrate —
    /// the schedule was only computed, not executed.
    pub substrate_ok: Option<bool>,
    /// Planning error, if the pass could not run (a healthy quiesced shard
    /// never produces one).
    pub error: Option<String>,
}

/// Everything [`Engine::rebalance`](crate::Engine::rebalance) or a
/// completed [`Engine::rebalance_online`](crate::Engine::rebalance_online)
/// session did.
#[derive(Debug, Clone)]
pub struct RebalanceReport {
    /// Aggregate stats at the opening barrier (pre-migration). For an
    /// online session: at planning time.
    pub before: crate::EngineStats,
    /// Aggregate stats after migrations (and the optional defrag pass).
    /// For an online session: at the completing step, so serving traffic
    /// that ran alongside the migration is included.
    pub after: crate::EngineStats,
    /// Objects migrated across shards.
    pub migrated_objects: u64,
    /// Total volume of those objects, in cells.
    pub migrated_volume: u64,
    /// Per-shard defrag summaries (empty unless requested).
    pub defrag: Vec<DefragSummary>,
    /// Whether this rebalance ran as one quiesce barrier or as an online
    /// session of bounded batches.
    pub mode: RebalanceMode,
    /// Migration batches executed (always 1 in barrier mode; online mode
    /// counts one per [`rebalance_step`](crate::Engine::rebalance_step)
    /// that migrated something).
    pub batches: u64,
}

/// Everything [`Engine::resize_shards`](crate::Engine::resize_shards) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeReport {
    /// Shard count before.
    pub from: usize,
    /// Shard count after.
    pub to: usize,
    /// Objects migrated to their new owners.
    pub migrated_objects: u64,
    /// Total volume of those objects, in cells.
    pub migrated_volume: u64,
}

/// Plans migrations equalizing per-shard volumes: donors (above the mean)
/// hand their largest movable objects to the currently emptiest shard until
/// they reach the mean. Deterministic: donors are visited in (surplus,
/// shard) order, objects in (size desc, id) order, and receiver ties break
/// toward the lowest shard.
pub(crate) fn plan_rebalance(shards: &[Vec<(ObjectId, u64)>]) -> Vec<Migration> {
    let n = shards.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut vols: Vec<f64> = shards
        .iter()
        .map(|objs| objs.iter().map(|&(_, size)| size as f64).sum())
        .collect();
    let mean = vols.iter().sum::<f64>() / n as f64;
    if mean == 0.0 {
        return Vec::new();
    }

    let mut donors: Vec<usize> = (0..n).filter(|&s| vols[s] > mean).collect();
    donors.sort_by(|&a, &b| vols[b].total_cmp(&vols[a]).then(a.cmp(&b)));

    let mut plan = Vec::new();
    for donor in donors {
        let mut objs = shards[donor].clone();
        objs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (id, size) in objs {
            let surplus = vols[donor] - mean;
            if surplus <= 0.0 {
                break;
            }
            // Largest-first: objects bigger than the remaining surplus are
            // skipped (moving one would push the donor below the mean and
            // the receiver above it — a swap, not an improvement).
            if size as f64 > surplus {
                continue;
            }
            let recv = (0..n)
                .min_by(|&a, &b| vols[a].total_cmp(&vols[b]).then(a.cmp(&b)))
                .expect("non-empty shard set");
            if recv == donor || vols[recv] + size as f64 >= vols[donor] {
                break; // nothing left to improve
            }
            vols[donor] -= size as f64;
            vols[recv] += size as f64;
            plan.push(Migration {
                id,
                size,
                from: donor,
                to: recv,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(sizes: &[u64], first_id: u64) -> Vec<(ObjectId, u64)> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (ObjectId(first_id + i as u64), s))
            .collect()
    }

    fn imbalance(shards: &[Vec<(ObjectId, u64)>], plan: &[Migration]) -> f64 {
        let mut vols: Vec<f64> = shards
            .iter()
            .map(|objs| objs.iter().map(|&(_, s)| s as f64).sum())
            .collect();
        for m in plan {
            vols[m.from] -= m.size as f64;
            vols[m.to] += m.size as f64;
        }
        let mean = vols.iter().sum::<f64>() / vols.len() as f64;
        vols.iter().cloned().fold(0.0, f64::max) / mean
    }

    #[test]
    fn balanced_input_plans_nothing() {
        let shards = vec![shard(&[10, 10], 0), shard(&[10, 10], 10)];
        assert!(plan_rebalance(&shards).is_empty());
    }

    #[test]
    fn single_shard_and_empty_inputs_plan_nothing() {
        assert!(plan_rebalance(&[]).is_empty());
        assert!(plan_rebalance(&[shard(&[5, 5], 0)]).is_empty());
        assert!(plan_rebalance(&[Vec::new(), Vec::new()]).is_empty());
    }

    #[test]
    fn skewed_volumes_equalize_within_granularity() {
        // One hot shard holding 4× the others' volume in small objects.
        let shards = vec![
            shard(&[8; 100], 0),  // 800
            shard(&[8; 25], 100), // 200
            shard(&[8; 25], 200), // 200
            shard(&[8; 25], 300), // 200
        ];
        let plan = plan_rebalance(&shards);
        assert!(!plan.is_empty());
        let after = imbalance(&shards, &plan);
        assert!(after < 1.05, "imbalance after plan: {after}");
        // Every migration leaves the hot shard.
        assert!(plan.iter().all(|m| m.from == 0));
    }

    #[test]
    fn largest_movable_objects_move_first() {
        // Donor volume 120, mean 64 ⇒ surplus 56: the 64 would overshoot
        // (it exceeds the surplus), so the 32 is the first mover.
        let shards = vec![shard(&[64, 32, 8, 8, 8], 0), shard(&[8], 10)];
        let plan = plan_rebalance(&shards);
        assert_eq!(plan[0].size, 32, "largest movable object goes first");
        let after = imbalance(&shards, &plan);
        assert!(after <= 1.0 + 1e-9, "imbalance after plan: {after}");
    }

    #[test]
    fn oversized_objects_are_skipped_not_swapped() {
        // Moving the 100 would just trade places; only the 10s can help.
        let shards = vec![shard(&[100, 10, 10], 0), shard(&[20], 10)];
        let plan = plan_rebalance(&shards);
        assert!(plan.iter().all(|m| m.size != 100));
        let after = imbalance(&shards, &plan);
        let before = imbalance(&shards, &[]);
        assert!(after <= before);
    }

    #[test]
    fn policy_requires_k_consecutive_breaches() {
        let mut p = RebalancePolicy::new(1.5, 3, 0);
        assert!(!p.observe(2.0));
        assert!(!p.observe(2.0));
        assert!(!p.observe(1.4), "dip below τ must reset the streak");
        assert!(!p.observe(2.0));
        assert!(!p.observe(2.0));
        assert!(p.observe(2.0), "3rd consecutive breach fires");
        // Firing resets the streak: the next breach starts over.
        assert!(!p.observe(2.0));
        assert_eq!(p.streak(), 1);
    }

    #[test]
    fn policy_hysteresis_swallows_observations() {
        let mut p = RebalancePolicy::new(1.2, 1, 3);
        assert!(p.observe(2.0), "k = 1 fires immediately");
        p.note_rebalanced();
        assert_eq!(p.cooldown(), 3);
        for _ in 0..3 {
            assert!(!p.observe(10.0), "cooldown observation must not fire");
        }
        assert!(p.observe(10.0), "cooldown over");
    }

    #[test]
    fn policy_boundary_is_strict() {
        // imbalance == τ does not breach: a fleet sitting exactly at the
        // threshold is left alone.
        let mut p = RebalancePolicy::new(1.5, 1, 0);
        assert!(!p.observe(1.5));
        assert!(p.observe(1.5 + 1e-9));
    }

    #[test]
    fn policy_default_is_sane() {
        let p = RebalancePolicy::default();
        assert!(p.tau > 1.0 && p.k > 0);
        assert_eq!((p.streak(), p.cooldown()), (0, 0));
    }

    #[test]
    #[should_panic(expected = "τ must exceed 1.0")]
    fn policy_rejects_unreachable_tau() {
        RebalancePolicy::new(1.0, 3, 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn policy_rejects_zero_k() {
        RebalancePolicy::new(2.0, 0, 2);
    }

    #[test]
    fn options_builders_compose() {
        let opts = RebalanceOptions::with_defrag(0.25).batched(7);
        assert_eq!(opts.defrag_eps, Some(0.25));
        assert_eq!(opts.batch_objects, 7);
        assert_eq!(RebalanceOptions::default().batched(0).batch_objects, 1);
    }

    #[test]
    fn mode_displays() {
        assert_eq!(RebalanceMode::Barrier.to_string(), "barrier");
        assert_eq!(RebalanceMode::Online.to_string(), "online");
    }

    #[test]
    fn plans_are_deterministic() {
        let shards = vec![
            shard(&[13, 7, 5, 3, 2], 0),
            shard(&[1], 10),
            shard(&[2, 2], 20),
        ];
        assert_eq!(plan_rebalance(&shards), plan_rebalance(&shards));
    }
}
