//! Cross-shard rebalancing: planning object migrations that equalize
//! per-shard live volumes.
//!
//! Theorem 2.1 keeps every shard within `(1+ε)·V_i`, but nothing bounds the
//! *spread* of the `V_i` themselves — a skewed delete pattern under hash
//! routing leaves one shard holding most of the volume while the rest idle.
//! The planner here computes a migration set (executed by
//! [`Engine::rebalance`](crate::Engine::rebalance) as
//! delete-on-source/insert-on-target transfers at a quiesce barrier) that
//! brings every donor shard down to the mean: greedy largest-first, so the
//! object count moved is small and each transfer's `f(w)` cost is paid by
//! as few objects as possible.
//!
//! The residual imbalance after a plan is bounded by object granularity:
//! every donor ends within its largest unmovable object of the mean, so
//! `max V_i / mean V_i ≤ 1 + ∆/mean` — far below the rebalance targets
//! anyone sets in practice (∆ ≪ per-shard volume).

use realloc_common::ObjectId;

/// Knobs for [`Engine::rebalance`](crate::Engine::rebalance).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RebalanceOptions {
    /// Run the per-shard Theorem 2.7 defragmenter after migrating, with
    /// this footprint slack `ε` (`0 < ε ≤ 1/2`): each shard computes the
    /// cost-oblivious compaction schedule over its post-migration layout
    /// (objects sorted by id), records the schedule's moves in its ledger,
    /// and reports the space bound. `None` skips the pass.
    pub defrag_eps: Option<f64>,
}

impl RebalanceOptions {
    /// Options with the defrag pass enabled at slack `eps`.
    pub fn with_defrag(eps: f64) -> Self {
        RebalanceOptions {
            defrag_eps: Some(eps),
        }
    }
}

/// One planned cross-shard transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Migration {
    pub id: ObjectId,
    pub size: u64,
    pub from: usize,
    pub to: usize,
}

/// What one shard's Theorem 2.7 defrag pass reported.
#[derive(Debug, Clone, PartialEq)]
pub struct DefragSummary {
    /// The shard that ran the pass.
    pub shard: usize,
    /// Live objects sorted.
    pub objects: usize,
    /// Total moves in the schedule.
    pub total_moves: u64,
    /// Largest address (exclusive) the schedule writes.
    pub peak_space: u64,
    /// The `(1+ε)V` array budget.
    pub budget: u64,
    /// Whether the theorem's `(1+ε)V + ∆` space bound held.
    pub within_budget: bool,
    /// Planning error, if the pass could not run (a healthy quiesced shard
    /// never produces one).
    pub error: Option<String>,
}

/// Everything [`Engine::rebalance`](crate::Engine::rebalance) did.
#[derive(Debug, Clone)]
pub struct RebalanceReport {
    /// Aggregate stats at the opening barrier (pre-migration).
    pub before: crate::EngineStats,
    /// Aggregate stats after migrations (and the optional defrag pass).
    pub after: crate::EngineStats,
    /// Objects migrated across shards.
    pub migrated_objects: u64,
    /// Total volume of those objects, in cells.
    pub migrated_volume: u64,
    /// Per-shard defrag summaries (empty unless requested).
    pub defrag: Vec<DefragSummary>,
}

/// Everything [`Engine::resize_shards`](crate::Engine::resize_shards) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeReport {
    /// Shard count before.
    pub from: usize,
    /// Shard count after.
    pub to: usize,
    /// Objects migrated to their new owners.
    pub migrated_objects: u64,
    /// Total volume of those objects, in cells.
    pub migrated_volume: u64,
}

/// Plans migrations equalizing per-shard volumes: donors (above the mean)
/// hand their largest movable objects to the currently emptiest shard until
/// they reach the mean. Deterministic: donors are visited in (surplus,
/// shard) order, objects in (size desc, id) order, and receiver ties break
/// toward the lowest shard.
pub(crate) fn plan_rebalance(shards: &[Vec<(ObjectId, u64)>]) -> Vec<Migration> {
    let n = shards.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut vols: Vec<f64> = shards
        .iter()
        .map(|objs| objs.iter().map(|&(_, size)| size as f64).sum())
        .collect();
    let mean = vols.iter().sum::<f64>() / n as f64;
    if mean == 0.0 {
        return Vec::new();
    }

    let mut donors: Vec<usize> = (0..n).filter(|&s| vols[s] > mean).collect();
    donors.sort_by(|&a, &b| vols[b].total_cmp(&vols[a]).then(a.cmp(&b)));

    let mut plan = Vec::new();
    for donor in donors {
        let mut objs = shards[donor].clone();
        objs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (id, size) in objs {
            let surplus = vols[donor] - mean;
            if surplus <= 0.0 {
                break;
            }
            // Largest-first: objects bigger than the remaining surplus are
            // skipped (moving one would push the donor below the mean and
            // the receiver above it — a swap, not an improvement).
            if size as f64 > surplus {
                continue;
            }
            let recv = (0..n)
                .min_by(|&a, &b| vols[a].total_cmp(&vols[b]).then(a.cmp(&b)))
                .expect("non-empty shard set");
            if recv == donor || vols[recv] + size as f64 >= vols[donor] {
                break; // nothing left to improve
            }
            vols[donor] -= size as f64;
            vols[recv] += size as f64;
            plan.push(Migration {
                id,
                size,
                from: donor,
                to: recv,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(sizes: &[u64], first_id: u64) -> Vec<(ObjectId, u64)> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (ObjectId(first_id + i as u64), s))
            .collect()
    }

    fn imbalance(shards: &[Vec<(ObjectId, u64)>], plan: &[Migration]) -> f64 {
        let mut vols: Vec<f64> = shards
            .iter()
            .map(|objs| objs.iter().map(|&(_, s)| s as f64).sum())
            .collect();
        for m in plan {
            vols[m.from] -= m.size as f64;
            vols[m.to] += m.size as f64;
        }
        let mean = vols.iter().sum::<f64>() / vols.len() as f64;
        vols.iter().cloned().fold(0.0, f64::max) / mean
    }

    #[test]
    fn balanced_input_plans_nothing() {
        let shards = vec![shard(&[10, 10], 0), shard(&[10, 10], 10)];
        assert!(plan_rebalance(&shards).is_empty());
    }

    #[test]
    fn single_shard_and_empty_inputs_plan_nothing() {
        assert!(plan_rebalance(&[]).is_empty());
        assert!(plan_rebalance(&[shard(&[5, 5], 0)]).is_empty());
        assert!(plan_rebalance(&[Vec::new(), Vec::new()]).is_empty());
    }

    #[test]
    fn skewed_volumes_equalize_within_granularity() {
        // One hot shard holding 4× the others' volume in small objects.
        let shards = vec![
            shard(&[8; 100], 0),  // 800
            shard(&[8; 25], 100), // 200
            shard(&[8; 25], 200), // 200
            shard(&[8; 25], 300), // 200
        ];
        let plan = plan_rebalance(&shards);
        assert!(!plan.is_empty());
        let after = imbalance(&shards, &plan);
        assert!(after < 1.05, "imbalance after plan: {after}");
        // Every migration leaves the hot shard.
        assert!(plan.iter().all(|m| m.from == 0));
    }

    #[test]
    fn largest_movable_objects_move_first() {
        // Donor volume 120, mean 64 ⇒ surplus 56: the 64 would overshoot
        // (it exceeds the surplus), so the 32 is the first mover.
        let shards = vec![shard(&[64, 32, 8, 8, 8], 0), shard(&[8], 10)];
        let plan = plan_rebalance(&shards);
        assert_eq!(plan[0].size, 32, "largest movable object goes first");
        let after = imbalance(&shards, &plan);
        assert!(after <= 1.0 + 1e-9, "imbalance after plan: {after}");
    }

    #[test]
    fn oversized_objects_are_skipped_not_swapped() {
        // Moving the 100 would just trade places; only the 10s can help.
        let shards = vec![shard(&[100, 10, 10], 0), shard(&[20], 10)];
        let plan = plan_rebalance(&shards);
        assert!(plan.iter().all(|m| m.size != 100));
        let after = imbalance(&shards, &plan);
        let before = imbalance(&shards, &[]);
        assert!(after <= before);
    }

    #[test]
    fn plans_are_deterministic() {
        let shards = vec![
            shard(&[13, 7, 5, 3, 2], 0),
            shard(&[1], 10),
            shard(&[2, 2], 20),
        ];
        assert_eq!(plan_rebalance(&shards), plan_rebalance(&shards));
    }
}
