//! The multi-tenant execution substrate behind the async facade: a small
//! pool of worker threads serving *every* registered tenant's shard
//! cores, with optional work stealing between the workers' queues.
//!
//! ## Shape
//!
//! A [`Fleet`] owns `W` worker threads, each with its own FIFO of
//! `Task`s. A tenant registered via [`Fleet::register`] gets an
//! [`AsyncEngine`] handle whose shard cores are
//! plain `ShardWorker` state machines (the *same* type the sync
//! [`Engine`](crate::Engine) runs on dedicated threads) parked inside
//! `CoreCell`s; each core is *homed* on one worker queue. Thousands of
//! tenants therefore cost thousands of heap-allocated cores, not
//! thousands of threads.
//!
//! ## The steal protocol (queues, not objects)
//!
//! When stealing is on, an idle worker takes the *front task* of the
//! most backlogged other queue and tries to run it on the owning core.
//! Whole queued batches move, never individual objects, so shard
//! affinity is untouched and per-object request order survives — order
//! is enforced by a per-core apply sequence: every task carries the
//! `seq` it was enqueued with, and a core only applies task `n` after
//! task `n-1`. The thief *peeks before it takes*: it wins the core's
//! lock first and only then removes the batch from the owner's queue,
//! so on either conflict edge the batch simply stays queued at its
//! owner — a failed attempt costs two lock probes and disturbs neither
//! the queue nor the order:
//!
//! 1. **lock conflict** — the core is mid-batch on another worker
//!    (`try_lock` fails; thieves never block on a core), and
//! 2. **seq conflict** — an *earlier* batch of the same core is in
//!    another worker's hands (popped but not yet locked), so applying
//!    this one would reorder.
//!
//! Successful steals bump `batches_stolen` (and observe how long the
//! batch waited queued); both conflict edges bump `steal_conflicts`.
//! Counters accumulate per tenant (so each tenant's
//! [`MetricsSnapshot`](crate::MetricsSnapshot) scrape carries its own
//! [`StealStats`]) and fleet-wide
//! ([`Fleet::steal_totals`]); per-tenant scrapes sum to the totals.
//!
//! ## Why this cannot deadlock or reorder
//!
//! A worker holds at most one core-side lock at a time (one core's
//! state lock, *or* one core's inflight counter), and thieves only ever
//! `try_lock` a core — the one nested hold (a thief probing a core
//! while holding the victim's queue lock) can therefore never wait.
//! Removal is what makes order trivial: a task leaves a queue only on
//! its home worker (which applies tasks one at a time, in pop order) or
//! under its core's lock with the sequence check already passed, so at
//! most one same-core task is ever un-applied outside the queue and the
//! apply sequence admits tasks in enqueue order exactly. The home
//! worker never blocks on its own core either: if a thief holds the
//! lock, the home re-enqueues the task (before its core's next task, so
//! core order is preserved) and serves its other tenants first. The
//! seq-gap arm of that home path survives only as a defensive check —
//! with peek-before-take it is unreachable.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, TryLockError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use realloc_common::oneshot;
use realloc_common::{BoxedReallocator, Router};
use realloc_telemetry::Histogram;

use crate::async_facade::AsyncEngine;
use crate::engine::{EngineConfig, EngineError};
use crate::metrics::StealStats;
use crate::shard::{Command, ShardWorker};

/// How a [`Fleet`] is shaped: worker-thread count and whether idle
/// workers steal queued batches from backlogged peers.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Worker threads (and steal-able task queues). Every registered
    /// tenant's cores are multiplexed over these.
    pub workers: usize,
    /// Whether idle workers steal whole queued batches from the most
    /// backlogged other queue. Off, the fleet is a plain multiplexer.
    pub steal: bool,
}

impl FleetConfig {
    /// `workers` threads, stealing off.
    pub fn with_workers(workers: usize) -> FleetConfig {
        FleetConfig {
            workers,
            steal: false,
        }
    }

    /// Enables (or disables) batch stealing.
    pub fn stealing(mut self, steal: bool) -> FleetConfig {
        self.steal = steal;
        self
    }
}

impl Default for FleetConfig {
    /// Four workers, stealing off.
    fn default() -> FleetConfig {
        FleetConfig::with_workers(4)
    }
}

/// Per-tenant work-stealing accumulators, shared by the tenant's cores
/// and every thief that serves them. Scraped into
/// [`StealStats`](crate::metrics::StealStats) by the tenant's metrics
/// barrier.
pub(crate) struct StealTelemetry {
    batches_stolen: AtomicU64,
    steal_conflicts: AtomicU64,
    steal_wait_ns: Histogram,
}

impl StealTelemetry {
    pub(crate) fn new() -> StealTelemetry {
        StealTelemetry {
            batches_stolen: AtomicU64::new(0),
            steal_conflicts: AtomicU64::new(0),
            steal_wait_ns: Histogram::new(),
        }
    }

    pub(crate) fn snapshot(&self) -> StealStats {
        StealStats {
            batches_stolen: self.batches_stolen.load(Ordering::Relaxed),
            steal_conflicts: self.steal_conflicts.load(Ordering::Relaxed),
            steal_wait_ns: self.steal_wait_ns.snapshot(),
        }
    }
}

/// What fleet workers execute. `Apply` drives the core's state machine
/// (the same [`Command`]s a sync shard thread serves); `Fence` is a pure
/// ordering barrier — it touches no core state, it just occupies a slot
/// in the apply sequence so its completion slots resolve only after
/// everything enqueued before it.
pub(crate) enum TaskCmd {
    Apply(Command),
    Fence,
}

/// One unit of queued work: a command against one core, its position in
/// that core's apply sequence, and the completion slots to fulfil once
/// it has been applied.
pub(crate) struct Task {
    pub(crate) core: Arc<CoreCell>,
    pub(crate) seq: u64,
    pub(crate) cmd: TaskCmd,
    pub(crate) enqueued: Instant,
    pub(crate) slots: Vec<oneshot::Sender<()>>,
}

/// The part of a core only its current executor may touch.
pub(crate) struct CoreState {
    /// The shard state machine; `None` after its `Finish` barrier.
    pub(crate) worker: Option<ShardWorker>,
    /// Seq of the next task this core may apply — the order guard that
    /// makes stealing invisible to per-object request order.
    pub(crate) next_apply: u64,
}

/// One tenant shard parked in the fleet: the worker state machine, its
/// apply-sequence guard, and the bounded-intake counter that gives the
/// async facade the same backpressure as the sync engine's
/// `sync_channel(queue_depth)`.
pub(crate) struct CoreCell {
    /// Index of the worker queue this core's tasks are enqueued on.
    pub(crate) home: usize,
    /// Admission bound: tasks admitted but not yet applied.
    depth: usize,
    pub(crate) state: Mutex<CoreState>,
    inflight: Mutex<usize>,
    freed: Condvar,
    /// The owning tenant's steal accumulators.
    pub(crate) steal: Arc<StealTelemetry>,
}

impl CoreCell {
    pub(crate) fn new(
        worker: ShardWorker,
        home: usize,
        depth: usize,
        steal: Arc<StealTelemetry>,
    ) -> CoreCell {
        CoreCell {
            home,
            depth,
            state: Mutex::new(CoreState {
                worker: Some(worker),
                next_apply: 0,
            }),
            inflight: Mutex::new(0),
            freed: Condvar::new(),
            steal,
        }
    }

    /// Blocks until the core has an admission slot free, then takes it.
    /// Mirrors the sync engine's blocking `send` on a full shard channel,
    /// including its stall accounting: only an admit that actually found
    /// the core full pays a clock read and records an observation.
    pub(crate) fn admit(&self, stall: Option<&Histogram>) {
        let mut inflight = self.inflight.lock().expect("core inflight poisoned");
        if *inflight >= self.depth {
            let started = stall.map(|_| Instant::now());
            while *inflight >= self.depth {
                inflight = self.freed.wait(inflight).expect("core inflight poisoned");
            }
            if let (Some(stall), Some(started)) = (stall, started) {
                stall.record(started.elapsed().as_nanos() as u64);
            }
        }
        *inflight += 1;
    }

    /// Returns an admission slot after a task has been applied.
    fn release(&self) {
        let mut inflight = self.inflight.lock().expect("core inflight poisoned");
        *inflight -= 1;
        drop(inflight);
        self.freed.notify_all();
    }
}

/// One worker's FIFO plus its wakeup signal.
pub(crate) struct WorkerQueue {
    pub(crate) tasks: Mutex<VecDeque<Task>>,
    pub(crate) ready: Condvar,
}

impl WorkerQueue {
    fn new() -> WorkerQueue {
        WorkerQueue {
            tasks: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }
}

/// Everything worker threads and tenant handles share.
pub(crate) struct FleetShared {
    pub(crate) queues: Vec<WorkerQueue>,
    pub(crate) steal: bool,
    pub(crate) shutdown: AtomicBool,
    paused: Vec<AtomicBool>,
    totals: StealTelemetry,
}

/// The tenant registry and worker pool. Register tenants with
/// [`register`](Fleet::register) (or the WAL'd/pinned variants), drive
/// them through their [`AsyncEngine`] handles, shut
/// the tenants down, then drop (or [`shutdown`](Fleet::shutdown)) the
/// fleet. Tenant handles must not outlive the fleet: once it is gone,
/// their futures resolve immediately and new work is silently dropped.
pub struct Fleet {
    shared: Arc<FleetShared>,
    threads: Vec<JoinHandle<()>>,
    next_home: AtomicUsize,
    next_tenant: AtomicUsize,
}

impl Fleet {
    /// Spawns the worker pool.
    ///
    /// # Panics
    /// Panics if `config.workers` is zero.
    pub fn new(config: FleetConfig) -> Fleet {
        assert!(config.workers > 0, "a fleet needs at least one worker");
        let shared = Arc::new(FleetShared {
            queues: (0..config.workers).map(|_| WorkerQueue::new()).collect(),
            steal: config.steal,
            shutdown: AtomicBool::new(false),
            paused: (0..config.workers)
                .map(|_| AtomicBool::new(false))
                .collect(),
            totals: StealTelemetry::new(),
        });
        let threads = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("realloc-fleet-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn fleet worker")
            })
            .collect();
        Fleet {
            shared,
            threads,
            next_home: AtomicUsize::new(0),
            next_tenant: AtomicUsize::new(0),
        }
    }

    /// Registers a tenant: builds its shard cores (any `Reallocator +
    /// Send` per shard, like [`Engine::with_router`](crate::Engine)),
    /// homes them round-robin over the worker queues, and returns the
    /// async handle.
    ///
    /// # Panics
    /// Panics like the sync constructors on a zero shard/batch count or
    /// a router/config shard-count mismatch.
    pub fn register<F>(
        &self,
        config: EngineConfig,
        router: Box<dyn Router>,
        factory: F,
    ) -> AsyncEngine
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        let workers = self.shared.queues.len();
        self.build_tenant(config, router, factory, None, move |fleet| {
            fleet.next_home.fetch_add(1, Ordering::Relaxed) % workers
        })
        .expect("spawning cores without a WAL cannot fail")
    }

    /// [`register`](Fleet::register), but every core homed on one
    /// specific worker queue. Deterministic placement for tests and the
    /// tail-latency bench (e.g. co-locating a hot tenant with its
    /// victims so only stealing can spread the load).
    ///
    /// # Panics
    /// Panics if `worker` is out of range, plus the
    /// [`register`](Fleet::register) panics.
    pub fn register_pinned<F>(
        &self,
        config: EngineConfig,
        router: Box<dyn Router>,
        factory: F,
        worker: usize,
    ) -> AsyncEngine
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        assert!(
            worker < self.shared.queues.len(),
            "pinned worker {worker} out of range ({} workers)",
            self.shared.queues.len()
        );
        self.build_tenant(config, router, factory, None, move |_| worker)
            .expect("spawning cores without a WAL cannot fail")
    }

    /// [`register`](Fleet::register) with durability: each core journals
    /// into `wal_dir` exactly like [`Engine::with_wal`](crate::Engine),
    /// so a crashed tenant is rebuilt with the ordinary sync
    /// [`Engine::recover`](crate::Engine) on the same directory. Give
    /// every tenant its own directory.
    ///
    /// # Errors
    /// [`EngineError::Wal`] if the directory or a shard's log cannot be
    /// created.
    pub fn register_with_wal<F>(
        &self,
        config: EngineConfig,
        router: Box<dyn Router>,
        factory: F,
        wal_dir: impl AsRef<Path>,
    ) -> Result<AsyncEngine, EngineError>
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        let dir = wal_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| EngineError::Wal {
            detail: format!("create {}: {e}", dir.display()),
        })?;
        let entries = std::fs::read_dir(&dir).map_err(|e| EngineError::Wal {
            detail: format!("scan {}: {e}", dir.display()),
        })?;
        for entry in entries.flatten() {
            let path = entry.path();
            let stale = path
                .extension()
                .is_some_and(|ext| ext == "wal" || ext == "ckpt");
            if stale {
                std::fs::remove_file(&path).map_err(|e| EngineError::Wal {
                    detail: format!("remove stale {}: {e}", path.display()),
                })?;
            }
        }
        let workers = self.shared.queues.len();
        self.build_tenant(config, router, factory, Some(dir), move |fleet| {
            fleet.next_home.fetch_add(1, Ordering::Relaxed) % workers
        })
    }

    fn build_tenant<F>(
        &self,
        config: EngineConfig,
        router: Box<dyn Router>,
        factory: F,
        wal_dir: Option<std::path::PathBuf>,
        mut home: impl FnMut(&Fleet) -> usize,
    ) -> Result<AsyncEngine, EngineError>
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        let tenant = self.next_tenant.fetch_add(1, Ordering::Relaxed);
        let homes: Vec<usize> = (0..config.shards).map(|_| home(self)).collect();
        AsyncEngine::build(
            Arc::clone(&self.shared),
            tenant,
            config,
            router,
            factory,
            wal_dir,
            &homes,
        )
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Whether batch stealing is on.
    pub fn stealing(&self) -> bool {
        self.shared.steal
    }

    /// Fleet-wide steal counters (every tenant's observations summed —
    /// per-tenant scrapes reconcile against this).
    pub fn steal_totals(&self) -> StealStats {
        self.shared.totals.snapshot()
    }

    /// Testing/bench hook: parks worker `w` — it applies nothing (own
    /// tasks *or* steals) until [`resume_worker`](Fleet::resume_worker).
    /// With stealing on, a paused home worker makes every one of its
    /// queued batches a forced steal; with stealing off it simulates a
    /// flush-bound shard. Shutdown resumes all workers.
    pub fn pause_worker(&self, w: usize) {
        self.shared.paused[w].store(true, Ordering::Release);
    }

    /// Un-parks a worker paused by [`pause_worker`](Fleet::pause_worker).
    pub fn resume_worker(&self, w: usize) {
        self.shared.paused[w].store(false, Ordering::Release);
        self.shared.queues[w].ready.notify_all();
    }

    /// Stops the worker pool: each worker drains its own queue, then
    /// exits. Call after the tenants have been shut down (dropping the
    /// fleet does the same).
    pub fn shutdown(self) {}
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for paused in &self.shared.paused {
            paused.store(false, Ordering::Release);
        }
        for queue in &self.shared.queues {
            queue.ready.notify_all();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One worker: drain own queue, steal if idle, park briefly otherwise.
fn worker_loop(shared: &FleetShared, me: usize) {
    loop {
        if shared.paused[me].load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        let task = {
            let mut tasks = shared.queues[me]
                .tasks
                .lock()
                .expect("fleet queue poisoned");
            tasks.pop_front()
        };
        if let Some(task) = task {
            run_own(shared, task);
            continue;
        }
        if shared.steal {
            match steal_once(shared, me) {
                Steal::Applied => continue,
                Steal::Conflict => {
                    // The contended core is mid-apply on another thread —
                    // probably deep in the very spike the steal patience
                    // waited out. Retrying hot only taxes the thread doing
                    // the work (it may share this CPU); nap a real interval.
                    std::thread::sleep(Duration::from_micros(250));
                    continue;
                }
                Steal::Empty => {}
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let tasks = shared.queues[me]
            .tasks
            .lock()
            .expect("fleet queue poisoned");
        if tasks.is_empty() {
            // Timed wait: steal candidates and the pause flag live outside
            // this queue's condvar, so re-scan a few thousand times a second.
            let _ = shared.queues[me]
                .ready
                .wait_timeout(tasks, Duration::from_micros(500))
                .expect("fleet queue poisoned");
        }
    }
}

/// Runs a task popped from its home queue. A locked core means a thief
/// is mid-apply on it — don't stand blocked while other cores' work
/// queues behind; put the task back in core order and serve someone
/// else. A seq gap likewise means a thief holds an *earlier* batch.
fn run_own(shared: &FleetShared, task: Task) {
    let core = Arc::clone(&task.core);
    let state = match core.state.try_lock() {
        Ok(state) => state,
        Err(TryLockError::WouldBlock) => {
            // Not a steal conflict — nothing was attempted, the home
            // just declines to idle against a thief's lock.
            requeue(shared, task);
            std::thread::yield_now();
            return;
        }
        Err(TryLockError::Poisoned(e)) => panic!("core state poisoned: {e}"),
    };
    if state.next_apply != task.seq {
        drop(state);
        conflict(shared, task);
        std::thread::yield_now();
        return;
    }
    apply(&core, state, task);
}

/// How one steal attempt ended.
enum Steal {
    /// A batch was stolen and applied.
    Applied,
    /// A conflict edge fired; the batch stayed at its owner. Worth
    /// retrying soon — the contended core frees within one batch.
    Conflict,
    /// Nothing to steal anywhere.
    Empty,
}

/// One steal attempt: peek the front of the most backlogged other
/// queue, win its core's lock *first*, and only then take the batch.
/// Never blocks on a core, and never removes a batch it cannot apply —
/// a conflict leaves the owner's queue byte-untouched.
fn steal_once(shared: &FleetShared, me: usize) -> Steal {
    let Some(victim) = best_victim(shared, me) else {
        return Steal::Empty;
    };
    let mut tasks = shared.queues[victim]
        .tasks
        .lock()
        .expect("fleet queue poisoned");
    let Some(front) = tasks.front() else {
        return Steal::Empty; // drained between the length probe and here
    };
    if !shared.paused[victim].load(Ordering::Acquire) && front.enqueued.elapsed() < STEAL_PATIENCE {
        // The home is live and the wait is still short — let it keep
        // its cache-hot core. Not a conflict: nothing contended, the
        // batch just is not worth taking yet.
        return Steal::Empty;
    }
    let core = Arc::clone(&front.core);
    let seq = front.seq;
    let state = match core.state.try_lock() {
        Ok(state) => state,
        Err(TryLockError::WouldBlock) => {
            // Conflict edge 1: the core is busy on another worker.
            drop(tasks);
            mark_conflict(shared, &core);
            return Steal::Conflict;
        }
        Err(TryLockError::Poisoned(e)) => panic!("core state poisoned: {e}"),
    };
    if state.next_apply != seq {
        // Conflict edge 2: an earlier batch of this core is in another
        // worker's hands (popped, not yet locked); applying now would
        // reorder.
        drop(state);
        drop(tasks);
        mark_conflict(shared, &core);
        return Steal::Conflict;
    }
    let task = tasks
        .pop_front()
        .expect("peeked front vanished under the queue lock");
    drop(tasks);
    let waited = task.enqueued.elapsed().as_nanos() as u64;
    core.steal.batches_stolen.fetch_add(1, Ordering::Relaxed);
    core.steal.steal_wait_ns.record(waited);
    shared.totals.batches_stolen.fetch_add(1, Ordering::Relaxed);
    shared.totals.steal_wait_ns.record(waited);
    apply(&core, state, task);
    Steal::Applied
}

/// How long a live home's front task must have waited before thieves
/// move in.
///
/// Stealing is not free: a stolen apply drags the core's cache-hot
/// reallocator state to another thread (on another CPU when there is
/// one), and the home declines into requeue churn whenever it meets the
/// thief's lock. A home that is merely mid-apply frees its front task
/// within tens of microseconds — cheaper to let it. A front task older
/// than this has its home genuinely stuck — most likely inside one
/// core's monolithic rebuild spike, which runs milliseconds at the
/// ≈10⁵-byte volumes a loaded core carries — and the queue wait already
/// dwarfs anything a steal can waste. Paused homes are exempt:
/// everything they hold is stranded until a thief takes it.
pub(crate) const STEAL_PATIENCE: Duration = Duration::from_millis(2);

/// The most backlogged queue other than `me`, if any has work.
fn best_victim(shared: &FleetShared, me: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (w, queue) in shared.queues.iter().enumerate() {
        if w == me {
            continue;
        }
        let len = queue.tasks.lock().expect("fleet queue poisoned").len();
        if len > 0 && best.is_none_or(|(_, blen)| len > blen) {
            best = Some((w, len));
        }
    }
    best.map(|(w, _)| w)
}

/// Applies a task whose turn has come on a locked core, then — with the
/// core lock released — returns the admission slot and fulfils the
/// completion slots, so an awaiting client observes an unlocked core
/// with capacity free.
fn apply<'a>(core: &'a Arc<CoreCell>, mut state: std::sync::MutexGuard<'a, CoreState>, task: Task) {
    match task.cmd {
        TaskCmd::Apply(cmd) => {
            if let Some(worker) = state.worker.as_mut() {
                if worker.handle(cmd) {
                    state.worker = None;
                }
            }
        }
        TaskCmd::Fence => {}
    }
    state.next_apply += 1;
    drop(state);
    core.release();
    for slot in task.slots {
        slot.send(());
    }
}

/// Counts a conflict against the core's tenant and the fleet totals.
/// The batch itself is untouched — with peek-before-take it never left
/// its owner's queue.
fn mark_conflict(shared: &FleetShared, core: &CoreCell) {
    core.steal.steal_conflicts.fetch_add(1, Ordering::Relaxed);
    shared
        .totals
        .steal_conflicts
        .fetch_add(1, Ordering::Relaxed);
}

/// The home worker's defensive conflict arm: count, then hand the batch
/// back to its own queue in core order. Unreachable by construction
/// (see the module docs) but kept so a future protocol change fails
/// soft instead of reordering.
fn conflict(shared: &FleetShared, task: Task) {
    mark_conflict(shared, &task.core);
    requeue(shared, task);
}

/// Re-enqueues a task on its home queue, directly in front of the first
/// queued task of the same core: anything queued for this core was
/// enqueued later (higher seq), so this restores seq order among
/// same-core tasks. Cross-core order carries no semantics, so with no
/// same-core task queued it goes to the back — the home works through
/// other cores before coming back to the contended one.
fn requeue(shared: &FleetShared, task: Task) {
    let queue = &shared.queues[task.core.home];
    let mut tasks = queue.tasks.lock().expect("fleet queue poisoned");
    match tasks.iter().position(|t| Arc::ptr_eq(&t.core, &task.core)) {
        Some(pos) => tasks.insert(pos, task),
        None => tasks.push_back(task),
    }
    drop(tasks);
    queue.ready.notify_one();
}
