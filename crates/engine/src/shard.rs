//! The shard worker: one thread, one reallocator, one ledger.
//!
//! A worker loops on its command channel. [`Command::Batch`] carries a run
//! of requests (the engine batches to amortize channel overhead); the
//! other commands are *barriers* — the engine sends them after flushing its
//! pending batches, so by the time a reply arrives every earlier request
//! has been served. Workers never panic on bad requests: a rejected
//! insert/delete is counted, remembered (first occurrence), and serving
//! continues, mirroring how a real service would 400 one request without
//! tearing down the shard.

use std::collections::HashSet;
use std::sync::mpsc::{Receiver, Sender};

use realloc_common::{Extent, Ledger, ObjectId, OpKind, Outcome, ReallocError, Reallocator};
use workload_gen::Request;

use crate::stats::ShardStats;

/// The first request a shard's reallocator rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the request in the shard's own stream (0-based).
    pub index: u64,
    /// The rejection.
    pub error: ReallocError,
}

/// Barrier reply: a stats snapshot plus any remembered error.
#[derive(Debug, Clone)]
pub(crate) struct ShardReply {
    pub stats: ShardStats,
    pub first_error: Option<ShardError>,
}

/// Everything a shard hands back when the engine shuts it down.
#[derive(Debug, Clone)]
pub struct ShardFinal {
    /// Final stats snapshot.
    pub stats: ShardStats,
    /// The shard's full per-request cost ledger, priceable post hoc under
    /// any cost function (the whole point of cost obliviousness). Empty
    /// when the engine was configured
    /// [`ledgerless`](crate::EngineConfig::ledgerless).
    pub ledger: Ledger,
    /// First rejected request, if any.
    pub first_error: Option<ShardError>,
}

/// What the engine sends down a shard's channel.
pub(crate) enum Command {
    /// Serve a run of requests in order.
    Batch(Vec<Request>),
    /// Complete deferred work (`Reallocator::quiesce`), then reply.
    Quiesce(Sender<ShardReply>),
    /// Reply with current stats (no state change).
    Snapshot(Sender<ShardReply>),
    /// Reply with the placements of all live objects, sorted by id.
    Extents(Sender<Vec<(ObjectId, Extent)>>),
    /// Final barrier: reply with stats + ledger and exit the thread.
    Finish(Sender<ShardFinal>),
}

/// Worker-thread state.
pub(crate) struct ShardWorker {
    shard: usize,
    realloc: Box<dyn Reallocator + Send>,
    record_ledger: bool,
    ledger: Ledger,
    /// Ids this shard believes live, by request history. The `Reallocator`
    /// trait cannot enumerate objects, so the worker tracks the population
    /// itself to answer [`Command::Extents`].
    live: HashSet<ObjectId>,
    requests: u64,
    batches: u64,
    errors: u64,
    first_error: Option<ShardError>,
    moves: u64,
    moved_volume: u64,
    /// Max over requests of `structure_after / volume_after`, maintained
    /// incrementally so it survives running ledgerless.
    max_settled_ratio: f64,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        realloc: Box<dyn Reallocator + Send>,
        record_ledger: bool,
    ) -> Self {
        ShardWorker {
            shard,
            realloc,
            record_ledger,
            ledger: Ledger::new(),
            live: HashSet::new(),
            requests: 0,
            batches: 0,
            errors: 0,
            first_error: None,
            moves: 0,
            moved_volume: 0,
            max_settled_ratio: 0.0,
        }
    }

    /// The worker loop. Returns when told to [`Command::Finish`] or when
    /// every engine-side sender is gone.
    pub(crate) fn run(mut self, rx: Receiver<Command>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Command::Batch(reqs) => {
                    self.batches += 1;
                    for req in reqs {
                        self.serve(req);
                    }
                }
                Command::Quiesce(reply) => {
                    let outcome = self.realloc.quiesce();
                    self.note_moves(&outcome);
                    let _ = reply.send(self.reply());
                }
                Command::Snapshot(reply) => {
                    let _ = reply.send(self.reply());
                }
                Command::Extents(reply) => {
                    let mut extents: Vec<(ObjectId, Extent)> = self
                        .live
                        .iter()
                        .filter_map(|&id| self.realloc.extent_of(id).map(|e| (id, e)))
                        .collect();
                    extents.sort_by_key(|&(id, _)| id);
                    let _ = reply.send(extents);
                }
                Command::Finish(reply) => {
                    let _ = reply.send(ShardFinal {
                        stats: self.snapshot(),
                        ledger: self.ledger,
                        first_error: self.first_error,
                    });
                    return;
                }
            }
        }
    }

    /// Serves one request, mirroring the single-threaded harness's ledger
    /// accounting exactly (same fields, same query points) so a sharded run
    /// is priceable the same way as a standalone one.
    fn serve(&mut self, req: Request) {
        let index = self.requests;
        self.requests += 1;
        let (kind, request_size, allocated, result) = match req {
            Request::Insert { id, size } => (
                OpKind::Insert,
                size,
                Some(size),
                self.realloc.insert(id, size),
            ),
            Request::Delete { id } => {
                // The object's size is only needed for the ledger record;
                // skip the lookup on the ledgerless fast path.
                let size = if self.record_ledger {
                    self.realloc.extent_of(id).map_or(0, |e| e.len)
                } else {
                    0
                };
                (OpKind::Delete, size, None, self.realloc.delete(id))
            }
        };
        match result {
            Ok(outcome) => {
                match req {
                    Request::Insert { id, .. } => {
                        self.live.insert(id);
                    }
                    Request::Delete { id } => {
                        self.live.remove(&id);
                    }
                }
                self.note_moves(&outcome);
                let structure = self.realloc.structure_size();
                let volume = self.realloc.live_volume();
                if volume > 0 {
                    self.max_settled_ratio =
                        self.max_settled_ratio.max(structure as f64 / volume as f64);
                }
                if self.record_ledger {
                    self.ledger.record(
                        kind,
                        request_size,
                        allocated,
                        &outcome,
                        structure,
                        volume,
                        self.realloc.max_object_size(),
                    );
                }
            }
            Err(error) => {
                self.errors += 1;
                self.first_error.get_or_insert(ShardError { index, error });
            }
        }
    }

    fn note_moves(&mut self, outcome: &Outcome) {
        self.moves += outcome.move_count() as u64;
        self.moved_volume += outcome.moved_volume();
    }

    fn snapshot(&self) -> ShardStats {
        ShardStats {
            shard: self.shard,
            algorithm: self.realloc.name(),
            requests: self.requests,
            batches: self.batches,
            errors: self.errors,
            live_count: self.realloc.live_count(),
            live_volume: self.realloc.live_volume(),
            footprint: self.realloc.footprint(),
            structure_size: self.realloc.structure_size(),
            max_object_size: self.realloc.max_object_size(),
            total_moves: self.moves,
            total_moved_volume: self.moved_volume,
            max_settled_ratio: self.max_settled_ratio,
        }
    }

    fn reply(&self) -> ShardReply {
        ShardReply {
            stats: self.snapshot(),
            first_error: self.first_error,
        }
    }
}
