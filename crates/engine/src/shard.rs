//! The shard worker: one thread, one reallocator, one ledger.
//!
//! A worker loops on its command channel. `Command::Batch` carries a run
//! of requests (the engine batches to amortize channel overhead); the
//! other commands are *barriers* — the engine sends them after flushing its
//! pending batches, so by the time a reply arrives every earlier request
//! has been served. Workers never panic on bad requests: a rejected
//! insert/delete is counted, remembered (first occurrence), and serving
//! continues, mirroring how a real service would 400 one request without
//! tearing down the shard.
//!
//! The migration commands (`Command::MigrateOut` / `Command::MigrateIn`)
//! are the shard half of the engine's cross-shard rebalance protocol. In
//! barrier mode they arrive at a quiesce barrier; in online mode they arrive
//! in the ordinary command stream, where channel FIFO order *is* the freeze:
//! every request enqueued before the migrate-out is served before the object
//! leaves. Either way a migrate-out drains the reallocator before replying,
//! so the object is fully gone from this shard before the engine re-inserts
//! it elsewhere (no instant at which one id is live on two shards).

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, Sender};

use realloc_common::{
    Extent, Ledger, ObjectId, OpKind, OpRecord, Outcome, ReallocError, Reallocator, StorageOp,
};
use storage_sim::wal::{checkpoint_path, read_checkpoint, wal_path, write_checkpoint};
use storage_sim::{checksum, pattern_for, Checkpoint, CheckpointEntry, WalRecord, WalWriter};
use workload_gen::Request;

use crate::metrics::{ShardMetrics, ShardTelemetry, SimLane};
use crate::plan::BatchPlan;
use crate::rebalance::DefragSummary;
use crate::stats::ShardStats;
use crate::substrate::{ShardSubstrate, SubstrateReport, Transfer, TransferPayload};

/// One shard's durability state: the write-ahead log appender plus the
/// path of the checkpoint file that truncates it. Owned by the worker
/// thread — journaling happens where the ops are applied, so the log's
/// record order is exactly the shard's apply order.
pub(crate) struct ShardJournal {
    pub writer: WalWriter,
    pub ckpt: PathBuf,
}

impl ShardJournal {
    /// Opens shard `shard`'s log under `dir`, resuming at the epoch of its
    /// current checkpoint (0 when none exists — a fresh shard).
    pub(crate) fn open(dir: &Path, shard: usize) -> std::io::Result<ShardJournal> {
        let ckpt = checkpoint_path(dir, shard);
        let epoch = read_checkpoint(&ckpt)?.map_or(0, |c| c.epoch);
        let writer = WalWriter::open(&wal_path(dir, shard), epoch)?;
        Ok(ShardJournal { writer, ckpt })
    }
}

/// The first request a shard's reallocator rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the request in the shard's own stream (0-based). Migration
    /// failures (which are not client requests) reuse the index of the next
    /// client request.
    pub index: u64,
    /// The rejection.
    pub error: ReallocError,
}

/// Barrier reply: a stats snapshot plus any remembered errors.
#[derive(Debug, Clone)]
pub(crate) struct ShardReply {
    pub stats: ShardStats,
    pub first_error: Option<ShardError>,
    /// First substrate rule/verification failure (sticky, like
    /// `first_error`): a write that violated the store's rules, or a
    /// cadence-triggered scan that found a divergence or damaged bytes.
    pub first_substrate_error: Option<String>,
}

/// Everything a shard hands back when the engine shuts it down.
#[derive(Debug, Clone)]
pub struct ShardFinal {
    /// Final stats snapshot.
    pub stats: ShardStats,
    /// The shard's full per-request cost ledger, priceable post hoc under
    /// any cost function (the whole point of cost obliviousness). Empty
    /// when the engine was configured
    /// [`ledgerless`](crate::EngineConfig::ledgerless).
    pub ledger: Ledger,
    /// First rejected request, if any.
    pub first_error: Option<ShardError>,
    /// First substrate rule/verification failure, if any (always `None`
    /// without a substrate; the final scan runs at every cadence).
    pub first_substrate_error: Option<String>,
}

/// What the engine sends down a shard's channel.
pub(crate) enum Command {
    /// Serve a run of requests in order.
    Batch(Vec<Request>),
    /// Complete deferred work (`Reallocator::quiesce`), then reply. A
    /// WAL'd shard also writes a checkpoint (live extents + the `pins` —
    /// the ids the routing table explicitly assigns to this shard, so the
    /// tiny assignment table rides inside the shard checkpoints) and
    /// truncates its log before replying.
    Quiesce {
        /// Barrier reply.
        reply: Sender<ShardReply>,
        /// Ids the router assigns to this shard off the rendezvous
        /// fallback (always empty without a WAL — nothing persists them).
        pins: Vec<ObjectId>,
    },
    /// Reply with current stats (no state change).
    Snapshot(Sender<ShardReply>),
    /// Reply with current stats plus the telemetry snapshot (histograms and
    /// sim-time accumulators). Unlike the other stats barriers, the caller
    /// does **not** surface sticky errors from this reply — a metrics
    /// scrape observes a degraded fleet instead of failing on it.
    Metrics(Sender<(ShardReply, ShardMetrics)>),
    /// Reply with the placements of all live objects, sorted by id.
    Extents(Sender<Vec<(ObjectId, Extent)>>),
    /// Rebalance protocol, outbound half: delete `ids` (they are being
    /// re-homed, not destroyed — ledgered as `MigrateOut`), drain deferred
    /// work so they are fully gone, then reply with the `(id, size)` of
    /// every object actually released. Per-object acks let the engine skip
    /// the inbound half for anything a broken reallocator refused to give
    /// up, and the acked *size* (not the planner's snapshot) is what the
    /// target shard inserts — so a delete + re-insert that changed an
    /// object's size between planning and execution (possible in online
    /// mode, where serving continues) cannot corrupt the transfer. Ids this
    /// shard no longer considers live are skipped silently: under a quiesce
    /// barrier that cannot happen, but an online rebalance races ordinary
    /// deletes, and a legitimately deleted object is not an error.
    MigrateOut {
        /// Objects leaving this shard, each with the globally unique
        /// transfer sequence number the engine assigned (journaled on both
        /// ends so recovery can pair a transfer's halves).
        ids: Vec<(ObjectId, u64)>,
        /// Barrier reply: shard state plus the released transfers (each an
        /// `(id, size)` ack, carrying the object's physical bytes and their
        /// checksum when this shard is substrate-backed).
        reply: Sender<(ShardReply, Vec<Transfer>)>,
    },
    /// Rebalance protocol, inbound half: insert `objects` (ledgered as
    /// `MigrateIn`; the transfer itself is priced as a reallocation), then
    /// reply with the ids actually adopted. A substrate-backed shard
    /// verifies each transfer's bytes against its shipped checksum *before*
    /// inserting; a damaged payload is refused
    /// ([`ReallocError::CorruptTransfer`]) so the ack fails and the engine's
    /// abort-after-pin machinery keeps routing consistent.
    MigrateIn {
        /// The arriving objects.
        objects: Vec<Transfer>,
        /// Barrier reply: shard state plus the adopted ids.
        reply: Sender<(ShardReply, Vec<ObjectId>)>,
    },
    /// Compute the Theorem 2.7 defrag schedule over this shard's live
    /// objects (sorted by id) at slack `eps`, ledger its moves, reply with
    /// the space/movement summary.
    Defrag {
        /// Footprint slack `ε` for the defragmenter (`0 < ε ≤ 1/2`).
        eps: f64,
        /// Summary reply.
        reply: Sender<DefragSummary>,
    },
    /// Run the full substrate verification scan now, regardless of the
    /// configured cadence, and reply with the summary (`None` when this
    /// shard has no substrate).
    VerifySubstrate(Sender<Option<SubstrateReport>>),
    /// Reply with every live object's physical bytes from the substrate,
    /// sorted by id (shards without a substrate reply with an empty list).
    /// A debugging/testing barrier — `O(V)`.
    DumpSubstrate(Sender<crate::ShardBytes>),
    /// Fault injection (testing): flip one byte of the lowest-id live
    /// object's substrate cells, checksum left intact, and reply with the
    /// damaged id (`None` without a substrate or live objects). The next
    /// verification scan must fail — and stay failed, since integrity
    /// violations are sticky.
    CorruptSubstrate(Sender<Option<ObjectId>>),
    /// Final barrier: reply with stats + ledger and exit the thread. Like
    /// `Quiesce`, a WAL'd shard checkpoints (with the same router `pins`)
    /// before replying, so a cleanly shut down fleet recovers from its
    /// checkpoints alone.
    Finish {
        /// Final reply.
        reply: Sender<ShardFinal>,
        /// Ids the router assigns to this shard (empty without a WAL).
        pins: Vec<ObjectId>,
    },
}

/// Worker-thread state.
pub(crate) struct ShardWorker {
    shard: usize,
    realloc: Box<dyn Reallocator + Send>,
    /// The optional byte-carrying substrate this shard replays into (see
    /// [`crate::substrate`]); `None` keeps the accounting-only fast path.
    substrate: Option<ShardSubstrate>,
    /// The optional write-ahead log this shard journals into. Records are
    /// buffered per command and written as one group commit at the command
    /// boundary — always *before* a barrier reply, so an acked command is
    /// a durable command.
    journal: Option<ShardJournal>,
    /// How many times this worker's state was rebuilt by recovery (0 for a
    /// freshly spawned worker).
    recoveries: u64,
    /// First substrate failure, sticky like `first_error`.
    first_substrate_error: Option<String>,
    /// Telemetry recording (histograms, sim-time pricing); `None` when the
    /// engine runs with telemetry off — every hook below degrades to a
    /// single `Option` check.
    telemetry: Option<ShardTelemetry>,
    record_ledger: bool,
    /// Fold every batch through the coalescing planner
    /// ([`crate::plan::BatchPlan`]) before touching the reallocator.
    coalesce: bool,
    ledger: Ledger,
    /// Ids this shard believes live, by request history. The `Reallocator`
    /// trait cannot enumerate objects, so the worker tracks the population
    /// itself to answer [`Command::Extents`].
    live: HashSet<ObjectId>,
    requests: u64,
    batches: u64,
    /// Valid requests the planner merged within surviving chains.
    requests_coalesced: u64,
    /// Valid requests the planner cancelled outright (insert + delete of an
    /// object that never existed outside its batch).
    requests_cancelled: u64,
    errors: u64,
    first_error: Option<ShardError>,
    moves: u64,
    moved_volume: u64,
    migrations_in: u64,
    migrations_out: u64,
    migrated_volume_in: u64,
    migrated_volume_out: u64,
    defrag_runs: u64,
    defrag_moves: u64,
    /// Max over requests of `structure_after / volume_after`, maintained
    /// incrementally so it survives running ledgerless.
    max_settled_ratio: f64,
}

impl ShardWorker {
    #[allow(clippy::too_many_arguments)] // one flat wiring point for the worker's collaborators
    pub(crate) fn new(
        shard: usize,
        realloc: Box<dyn Reallocator + Send>,
        substrate: Option<ShardSubstrate>,
        record_ledger: bool,
        coalesce: bool,
        journal: Option<ShardJournal>,
        recoveries: u64,
        telemetry: Option<ShardTelemetry>,
    ) -> Self {
        ShardWorker {
            shard,
            realloc,
            substrate,
            journal,
            recoveries,
            first_substrate_error: None,
            telemetry,
            record_ledger,
            coalesce,
            ledger: Ledger::new(),
            live: HashSet::new(),
            requests: 0,
            batches: 0,
            requests_coalesced: 0,
            requests_cancelled: 0,
            errors: 0,
            first_error: None,
            moves: 0,
            moved_volume: 0,
            migrations_in: 0,
            migrations_out: 0,
            migrated_volume_in: 0,
            migrated_volume_out: 0,
            defrag_runs: 0,
            defrag_moves: 0,
            max_settled_ratio: 0.0,
        }
    }

    /// Builds a worker from the engine's configuration — the wiring point
    /// shared by the dedicated-thread engine ([`crate::Engine`]) and the
    /// multi-tenant fleet ([`crate::Fleet`]), so both front-ends get
    /// identical substrate, journal, and telemetry setup.
    pub(crate) fn build(
        config: &crate::EngineConfig,
        shard: usize,
        realloc: Box<dyn Reallocator + Send>,
        wal_dir: Option<&Path>,
        recoveries: u64,
    ) -> Result<ShardWorker, crate::EngineError> {
        let substrate = config.substrate.map(|s| s.build(shard));
        let journal = match wal_dir {
            Some(dir) => {
                Some(
                    ShardJournal::open(dir, shard).map_err(|e| crate::EngineError::Wal {
                        detail: format!("open shard {shard} journal: {e}"),
                    })?,
                )
            }
            None => None,
        };
        let telemetry = config.telemetry.then(|| ShardTelemetry::new(config.device));
        Ok(ShardWorker::new(
            shard,
            realloc,
            substrate,
            config.record_ledger,
            config.coalesce,
            journal,
            recoveries,
            telemetry,
        ))
    }

    /// The worker loop. Returns when told to [`Command::Finish`] or when
    /// every engine-side sender is gone.
    pub(crate) fn run(mut self, rx: Receiver<Command>) {
        while let Ok(cmd) = rx.recv() {
            if self.handle(cmd) {
                return;
            }
        }
    }

    /// Applies one command against this worker's state — the single entry
    /// point both the dedicated shard thread ([`run`](Self::run)) and a
    /// fleet worker (possibly a *thief* applying a stolen batch) use, so
    /// stealing can never change what a command does, only where it runs.
    /// Returns `true` once [`Command::Finish`] has been served; the worker
    /// must not be handed further commands after that.
    pub(crate) fn handle(&mut self, cmd: Command) -> bool {
        {
            match cmd {
                Command::Batch(reqs) => {
                    self.batches += 1;
                    let started = self.telemetry.as_mut().map(|t| {
                        t.batch_sim_accum = 0.0;
                        std::time::Instant::now()
                    });
                    let raw = reqs.len() as u64;
                    let applied = if self.coalesce {
                        self.serve_planned(reqs)
                    } else {
                        for req in reqs {
                            self.serve(req);
                        }
                        raw
                    };
                    if self
                        .substrate
                        .as_ref()
                        .is_some_and(|s| s.cadence().at_batches())
                    {
                        self.verify_substrate();
                    }
                    // Group commit: the whole batch's records become one
                    // durable frame — one fsync per batch, not per op.
                    self.wal_commit();
                    if let (Some(t), Some(start)) = (self.telemetry.as_mut(), started) {
                        t.batch_raw_requests.record(raw);
                        t.batch_planned_requests.record(applied);
                        t.batch_service_ns.record(start.elapsed().as_nanos() as u64);
                        if t.device.is_some() {
                            t.batch_sim_us.record(t.batch_sim_accum.round() as u64);
                        }
                    }
                }
                Command::Quiesce { reply, pins } => {
                    let outcome = self.realloc.quiesce();
                    self.absorb(&outcome, SimLane::Serve);
                    self.verify_substrate_at_barrier();
                    self.wal_checkpoint(&pins);
                    let _ = reply.send(self.reply());
                }
                Command::Snapshot(reply) => {
                    self.verify_substrate_at_barrier();
                    let _ = reply.send(self.reply());
                }
                Command::Metrics(reply) => {
                    let _ = reply.send((self.reply(), self.metrics()));
                }
                Command::Extents(reply) => {
                    let _ = reply.send(self.live_extents());
                }
                Command::MigrateOut { ids, reply } => {
                    let mut released = Vec::with_capacity(ids.len());
                    for (id, xfer) in ids {
                        if !self.live.contains(&id) {
                            // Deleted by serving traffic since the plan was
                            // drawn (online mode only) — nothing to re-home.
                            continue;
                        }
                        if let Some(transfer) = self.migrate_out(id, xfer) {
                            released.push(transfer);
                        }
                    }
                    // Drain deferred deletes (the deamortized structure logs
                    // them) so the objects are fully gone before the engine
                    // re-inserts them on their target shards.
                    let outcome = self.realloc.quiesce();
                    self.absorb(&outcome, SimLane::Migrate);
                    // Ordered commit, source half: the `MigrateOut` records
                    // are durable *before* the ack reaches the engine, so
                    // no transfer can arrive anywhere whose departure a
                    // crash could un-write.
                    self.wal_commit();
                    let _ = reply.send((self.reply(), released));
                }
                Command::MigrateIn { objects, reply } => {
                    let mut adopted = Vec::with_capacity(objects.len());
                    for transfer in objects {
                        let id = transfer.id;
                        if self.migrate_in(transfer) {
                            adopted.push(id);
                        }
                    }
                    // Ordered commit, target half: `MigrateIn` and its
                    // `RouteFlip` share this frame, so a recovered fleet
                    // never sees an adopted object without its flip (or
                    // vice versa) — the id is live on exactly one shard
                    // after replay, whichever instant the crash hit.
                    self.wal_commit();
                    let _ = reply.send((self.reply(), adopted));
                }
                Command::Defrag { eps, reply } => {
                    let _ = reply.send(self.defrag(eps));
                }
                Command::VerifySubstrate(reply) => {
                    let _ = reply.send(self.substrate_report());
                }
                Command::DumpSubstrate(reply) => {
                    let dump = self
                        .substrate
                        .as_ref()
                        .map(|s| s.contents())
                        .unwrap_or_default();
                    let _ = reply.send(dump);
                }
                Command::CorruptSubstrate(reply) => {
                    let _ = reply.send(
                        self.substrate
                            .as_mut()
                            .and_then(|s| s.corrupt_first_object()),
                    );
                }
                Command::Finish { reply, pins } => {
                    // The final scan runs at every cadence (including
                    // `Final`, whose whole point it is).
                    if self.substrate.is_some() {
                        self.verify_substrate();
                    }
                    self.wal_checkpoint(&pins);
                    let _ = reply.send(ShardFinal {
                        stats: self.snapshot(),
                        ledger: std::mem::take(&mut self.ledger),
                        first_error: self.first_error,
                        first_substrate_error: self.first_substrate_error.clone(),
                    });
                    return true;
                }
            }
        }
        false
    }

    /// Runs the full substrate scan if the cadence includes barriers.
    fn verify_substrate_at_barrier(&mut self) {
        if self
            .substrate
            .as_ref()
            .is_some_and(|s| s.cadence().at_barriers())
        {
            self.verify_substrate();
        }
    }

    /// Runs the full substrate scan, remembering the first failure.
    fn verify_substrate(&mut self) {
        let Some(substrate) = self.substrate.as_mut() else {
            return;
        };
        let realloc = &*self.realloc;
        if let Err(e) = substrate.verify(|id| realloc.extent_of(id), realloc.live_count()) {
            self.first_substrate_error.get_or_insert(e.to_string());
        }
    }

    /// The explicit-verification barrier's summary (always scans).
    fn substrate_report(&mut self) -> Option<SubstrateReport> {
        let window = self.substrate.as_ref()?.window();
        self.verify_substrate();
        Some(SubstrateReport {
            shard: self.shard,
            window,
            objects: self.realloc.live_count(),
            bytes: self.realloc.live_volume(),
            error: self.first_substrate_error.clone(),
        })
    }

    /// Counts an outcome's moves *and* replays its physical ops into the
    /// substrate (when one is configured). Every serving-path outcome goes
    /// through here; the one exception is a migrate-in, whose arrival
    /// `Allocate` must write the transferred bytes rather than a fresh
    /// pattern (see [`ShardWorker::migrate_in`]).
    ///
    /// `lane` attributes the outcome's physical ops to the serving or
    /// migration side of the simulated-device clock (a no-op without a
    /// configured [`DeviceProfile`](crate::DeviceProfile)).
    fn absorb(&mut self, outcome: &Outcome, lane: SimLane) {
        self.note_moves(outcome);
        self.journal_ops(&outcome.ops);
        self.replay_ops(&outcome.ops);
        if let Some(t) = self.telemetry.as_mut() {
            t.price_ops(&outcome.ops, lane);
        }
    }

    /// Appends one WAL record per physical op to the journal's pending
    /// buffer. Nothing hits disk here — the records become durable at the
    /// next [`ShardWorker::wal_commit`] (a batch boundary or a barrier),
    /// which is what makes the append a *group* commit.
    ///
    /// The log stores digests, not payloads: a live object's bytes are
    /// always `pattern_for(id, len)` (allocations write the pattern, moves
    /// and transfers preserve it byte-for-byte), so recovery can regenerate
    /// content and prove it against the journaled digest.
    fn journal_ops(&mut self, ops: &[StorageOp]) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        for op in ops {
            match *op {
                StorageOp::Allocate { id, to } => journal.writer.append(WalRecord::Allocate {
                    id,
                    offset: to.offset,
                    len: to.len,
                    digest: checksum(&pattern_for(id, to.len)),
                }),
                StorageOp::Move { id, from, to } => journal.writer.append(WalRecord::Move {
                    id,
                    from: from.offset,
                    to: to.offset,
                    len: to.len,
                }),
                StorageOp::Free { id, at } => journal.writer.append(WalRecord::Free {
                    id,
                    offset: at.offset,
                    len: at.len,
                }),
                StorageOp::CheckpointBarrier => {}
            }
        }
    }

    /// Flushes the journal's pending records as one checksummed frame (the
    /// group commit). A write failure is sticky, surfacing through the same
    /// channel as substrate violations — a shard that cannot promise
    /// durability must not keep acking as if it could.
    fn wal_commit(&mut self) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        let pending = journal.writer.pending_records() as u64;
        let started = std::time::Instant::now();
        match journal.writer.commit() {
            Ok(frame_bytes) => {
                // Empty commits write no frame and pay no device time; only
                // real group commits count toward the commit histograms.
                if frame_bytes > 0 {
                    if let Some(t) = self.telemetry.as_mut() {
                        t.commit_records.record(pending);
                        t.commit_latency_ns
                            .record(started.elapsed().as_nanos() as u64);
                        if let Some(device) = t.device.as_ref() {
                            t.wal_commit_sim_us += device.time_of_commit(frame_bytes);
                        }
                    }
                }
            }
            Err(e) => {
                self.first_substrate_error
                    .get_or_insert(format!("wal commit: {e}"));
            }
        }
    }

    /// Checkpoint-then-truncate: persists the full live layout (plus which
    /// ids the router explicitly pins here) at `epoch + 1`, then discards
    /// the log prefix that checkpoint subsumes. The order is crash-safe —
    /// a kill between the atomic checkpoint rename and the truncate leaves
    /// stale frames whose epoch predates the checkpoint, and replay skips
    /// them.
    fn wal_checkpoint(&mut self, pins: &[ObjectId]) {
        if self.journal.is_none() {
            return;
        }
        self.wal_commit();
        let pinned: HashSet<ObjectId> = pins.iter().copied().collect();
        let entries = self
            .live_extents()
            .into_iter()
            .map(|(id, e)| CheckpointEntry {
                id,
                offset: e.offset,
                len: e.len,
                digest: checksum(&pattern_for(id, e.len)),
                assigned: pinned.contains(&id),
            })
            .collect();
        let journal = self.journal.as_mut().expect("checked above");
        let epoch = journal.writer.epoch() + 1;
        let result = write_checkpoint(&journal.ckpt, &Checkpoint { epoch, entries })
            .and_then(|()| journal.writer.truncate_to_epoch(epoch));
        if let Err(e) = result {
            self.first_substrate_error
                .get_or_insert(format!("wal checkpoint: {e}"));
        }
    }

    /// Journals a migrate-in outcome: the arriving object's `Allocate`
    /// becomes a `MigrateIn` carrying the payload's checksum and the
    /// transfer's sequence number, and the record is chased by a
    /// `RouteFlip` in the *same* pending group — so the two are committed
    /// (and survive a crash) atomically. Side-effect ops from the insert
    /// (flush moves) journal normally.
    fn journal_arrival(
        &mut self,
        ops: &[StorageOp],
        arriving: ObjectId,
        payload: Option<&TransferPayload>,
        xfer: u64,
    ) {
        if self.journal.is_none() {
            return;
        }
        for op in ops {
            match *op {
                StorageOp::Allocate { id, to } if id == arriving => {
                    let digest =
                        payload.map_or_else(|| checksum(&pattern_for(id, to.len)), |p| p.checksum);
                    self.journal.as_mut().expect("checked above").writer.append(
                        WalRecord::MigrateIn {
                            id,
                            offset: to.offset,
                            len: to.len,
                            digest,
                            xfer,
                        },
                    );
                }
                _ => self.journal_ops(std::slice::from_ref(op)),
            }
        }
        self.journal
            .as_mut()
            .expect("checked above")
            .writer
            .append(WalRecord::RouteFlip {
                id: arriving,
                shard: self.shard as u64,
                xfer,
            });
    }

    /// Replays physical ops into the substrate, remembering the first
    /// violation.
    fn replay_ops(&mut self, ops: &[StorageOp]) {
        let Some(substrate) = self.substrate.as_mut() else {
            return;
        };
        if let Err(e) = substrate.apply_ops(ops) {
            self.first_substrate_error.get_or_insert(e.to_string());
        }
    }

    /// Replays a migrate-in outcome: the arriving object's `Allocate`
    /// adopts the transferred payload (bytes re-checksummed by the store);
    /// every other op — e.g. moves from a flush the insert triggered —
    /// applies normally.
    fn replay_arrival(
        &mut self,
        ops: &[StorageOp],
        arriving: ObjectId,
        payload: Option<&TransferPayload>,
    ) {
        let Some(substrate) = self.substrate.as_mut() else {
            return;
        };
        for op in ops {
            let result = match (op, payload) {
                (StorageOp::Allocate { id, to }, Some(p)) if *id == arriving => {
                    substrate.adopt(arriving, *to, p)
                }
                _ => substrate.apply_ops(std::slice::from_ref(op)),
            };
            if let Err(e) = result {
                self.first_substrate_error.get_or_insert(e.to_string());
                return;
            }
        }
    }

    fn live_extents(&self) -> Vec<(ObjectId, Extent)> {
        let mut extents: Vec<(ObjectId, Extent)> = self
            .live
            .iter()
            .filter_map(|&id| self.realloc.extent_of(id).map(|e| (id, e)))
            .collect();
        extents.sort_by_key(|&(id, _)| id);
        extents
    }

    /// Folds one batch through the coalescing planner and serves only the
    /// net requests (see [`crate::plan`]). Every raw request is still
    /// counted and error-checked at its own stream index — the planner
    /// simulates liveness, so rejections land exactly where an uncoalesced
    /// run would report them — but merged and cancelled requests never
    /// reach the reallocator, the substrate, or the WAL. Returns the number
    /// of planned requests actually applied.
    fn serve_planned(&mut self, reqs: Vec<Request>) -> u64 {
        let base = self.requests;
        self.requests += reqs.len() as u64;
        let plan = {
            let live = &self.live;
            let realloc = &*self.realloc;
            BatchPlan::build(&reqs, |id| {
                live.contains(&id)
                    .then(|| realloc.extent_of(id).map_or(0, |e| e.len))
            })
        };
        for predicted in &plan.errors {
            self.errors += 1;
            self.first_error.get_or_insert(ShardError {
                index: base + predicted.offset,
                error: predicted.error,
            });
        }
        self.requests_coalesced += plan.coalesced;
        self.requests_cancelled += plan.cancelled;
        let applied = plan.applied();
        for (offset, req) in plan.planned {
            self.serve_at(base + offset, req);
        }
        applied
    }

    /// Serves one request at the next stream index.
    fn serve(&mut self, req: Request) {
        let index = self.requests;
        self.requests += 1;
        self.serve_at(index, req);
    }

    /// Serves one request at stream index `index`, mirroring the
    /// single-threaded harness's ledger accounting exactly (same fields,
    /// same query points) so a sharded run is priceable the same way as a
    /// standalone one.
    fn serve_at(&mut self, index: u64, req: Request) {
        let (kind, request_size, allocated, result) = match req {
            Request::Insert { id, size } => (
                OpKind::Insert,
                size,
                Some(size),
                self.realloc.insert(id, size),
            ),
            Request::Delete { id } => {
                // The object's size is only needed for the ledger record;
                // skip the lookup on the ledgerless fast path.
                let size = if self.record_ledger {
                    self.realloc.extent_of(id).map_or(0, |e| e.len)
                } else {
                    0
                };
                (OpKind::Delete, size, None, self.realloc.delete(id))
            }
        };
        match result {
            Ok(outcome) => {
                match req {
                    Request::Insert { id, .. } => {
                        self.live.insert(id);
                    }
                    Request::Delete { id } => {
                        self.live.remove(&id);
                    }
                }
                self.absorb(&outcome, SimLane::Serve);
                let structure = self.observe_space();
                if self.record_ledger {
                    self.ledger.record(
                        kind,
                        request_size,
                        allocated,
                        &outcome,
                        structure,
                        self.realloc.live_volume(),
                        self.realloc.max_object_size(),
                    );
                }
            }
            Err(error) => {
                self.errors += 1;
                self.first_error.get_or_insert(ShardError { index, error });
            }
        }
    }

    /// The outbound half of one cross-shard transfer: a delete that is
    /// ledgered as `MigrateOut` (the object lives on elsewhere) and counted
    /// in the migration telemetry, not in `requests`. Returns the released
    /// transfer — carrying the object's physical bytes and checksum when
    /// this shard is substrate-backed — or `None` if the reallocator
    /// refused to let go.
    fn migrate_out(&mut self, id: ObjectId, xfer: u64) -> Option<Transfer> {
        let size = self.realloc.extent_of(id).map_or(0, |e| e.len);
        // Read the departing bytes *before* the delete frees the extent.
        let payload = self.substrate.as_mut().and_then(|s| s.release(id));
        match self.realloc.delete(id) {
            Ok(outcome) => {
                self.live.remove(&id);
                self.absorb(&outcome, SimLane::Migrate);
                // The departure is journaled under the transfer's sequence
                // number so recovery can pair it with the target's
                // `MigrateIn` — an unpaired departure means the object died
                // in flight and must be resurrected here.
                if let Some(journal) = self.journal.as_mut() {
                    journal
                        .writer
                        .append(WalRecord::MigrateOut { id, size, xfer });
                }
                self.migrations_out += 1;
                self.migrated_volume_out += size;
                // Count the physical copy-out only now that the object has
                // actually left — a refused delete must not inflate the
                // ledger-vs-bytes accounting.
                if let (Some(substrate), Some(p)) = (self.substrate.as_mut(), payload.as_ref()) {
                    substrate.note_released(p);
                }
                let structure = self.observe_space();
                if self.record_ledger {
                    self.ledger.push(OpRecord {
                        kind: OpKind::MigrateOut,
                        request_size: size,
                        allocated: None,
                        moved_sizes: outcome.moved_sizes().collect(),
                        checkpoints: outcome.checkpoints,
                        structure_after: structure,
                        peak_during: outcome.peak_structure_size.max(structure),
                        volume_after: self.realloc.live_volume(),
                        delta_after: self.realloc.max_object_size(),
                    });
                }
                Some(Transfer {
                    id,
                    size,
                    xfer,
                    payload,
                })
            }
            Err(error) => {
                self.note_migration_error(error);
                None
            }
        }
    }

    /// The inbound half: an insert ledgered as `MigrateIn`. The transfer
    /// itself is a *reallocation* of the object (it was allocated once, on
    /// its original shard), so its size joins `moved_sizes` and the shard's
    /// move telemetry — cost functions price it like any other move.
    ///
    /// A substrate-backed shard first proves the shipped bytes match their
    /// checksum; a damaged payload is refused *before* touching the
    /// reallocator ([`ReallocError::CorruptTransfer`]), so the failed ack
    /// reaches the engine with this shard's serving structure clean. On
    /// success the arrival `Allocate` writes the transferred bytes — not a
    /// fresh pattern — so the migration is byte-faithful end to end.
    /// Returns whether the object was adopted.
    fn migrate_in(&mut self, transfer: Transfer) -> bool {
        let Transfer {
            id,
            size,
            xfer,
            payload,
        } = transfer;
        if let (Some(_), Some(payload)) = (self.substrate.as_ref(), payload.as_ref()) {
            if !ShardSubstrate::payload_intact(payload, size) {
                self.note_migration_error(ReallocError::CorruptTransfer(id));
                return false;
            }
        }
        match self.realloc.insert(id, size) {
            Ok(outcome) => {
                self.live.insert(id);
                self.journal_arrival(&outcome.ops, id, payload.as_ref(), xfer);
                self.replay_arrival(&outcome.ops, id, payload.as_ref());
                self.note_moves(&outcome);
                if let Some(t) = self.telemetry.as_mut() {
                    t.price_ops(&outcome.ops, SimLane::Migrate);
                }
                self.moves += 1;
                self.moved_volume += size;
                self.migrations_in += 1;
                self.migrated_volume_in += size;
                let structure = self.observe_space();
                if self.record_ledger {
                    let mut moved_sizes = vec![size];
                    moved_sizes.extend(outcome.moved_sizes());
                    self.ledger.push(OpRecord {
                        kind: OpKind::MigrateIn,
                        request_size: size,
                        allocated: None,
                        moved_sizes,
                        checkpoints: outcome.checkpoints,
                        structure_after: structure,
                        peak_during: outcome.peak_structure_size.max(structure),
                        volume_after: self.realloc.live_volume(),
                        delta_after: self.realloc.max_object_size(),
                    });
                }
                true
            }
            Err(error) => {
                self.note_migration_error(error);
                false
            }
        }
    }

    /// Computes (and ledgers) the Theorem 2.7 compaction schedule over this
    /// shard's live objects, sorted by id. A substrate-backed shard also
    /// *performs* the scheduled copies on real bytes — in a sandbox seeded
    /// from its store, so the serving structure stays as Theorem 2.1
    /// maintains it — and reports whether every object landed byte-intact
    /// at its promised placement ([`DefragSummary::substrate_ok`]).
    fn defrag(&mut self, eps: f64) -> DefragSummary {
        let extents = self.live_extents();
        let delta = self.realloc.max_object_size();
        match realloc_core::defragment(&extents, eps, |a, b| a.cmp(&b)) {
            Ok(report) => {
                self.defrag_runs += 1;
                self.defrag_moves += report.total_moves as u64;
                let substrate_ok = self
                    .substrate
                    .as_ref()
                    .map(|s| s.validate_schedule(&extents, &report.ops, &report.sorted));
                if let Some(Err(e)) = &substrate_ok {
                    self.first_substrate_error
                        .get_or_insert(format!("defrag schedule: {e}"));
                }
                let structure = self.realloc.structure_size();
                if self.record_ledger {
                    self.ledger.push(OpRecord {
                        kind: OpKind::Defrag,
                        request_size: 0,
                        allocated: None,
                        moved_sizes: report
                            .ops
                            .iter()
                            .filter_map(|op| match op {
                                realloc_common::StorageOp::Move { to, .. } => Some(to.len),
                                _ => None,
                            })
                            .collect(),
                        checkpoints: 0,
                        structure_after: structure,
                        peak_during: report.peak_space.max(structure),
                        volume_after: self.realloc.live_volume(),
                        delta_after: delta,
                    });
                }
                DefragSummary {
                    shard: self.shard,
                    objects: extents.len(),
                    total_moves: report.total_moves as u64,
                    peak_space: report.peak_space,
                    budget: report.budget,
                    within_budget: report.peak_space <= report.budget + delta
                        && !report.prefix_suffix_collision,
                    substrate_ok: substrate_ok.map(|r| r.is_ok()),
                    error: None,
                }
            }
            Err(e) => DefragSummary {
                shard: self.shard,
                objects: extents.len(),
                total_moves: 0,
                peak_space: 0,
                budget: 0,
                within_budget: false,
                substrate_ok: None,
                error: Some(e.to_string()),
            },
        }
    }

    fn note_migration_error(&mut self, error: ReallocError) {
        self.errors += 1;
        self.first_error.get_or_insert(ShardError {
            index: self.requests,
            error,
        });
    }

    fn note_moves(&mut self, outcome: &Outcome) {
        self.moves += outcome.move_count() as u64;
        self.moved_volume += outcome.moved_volume();
    }

    /// Folds the current space telemetry into `max_settled_ratio` and
    /// returns the structure size.
    fn observe_space(&mut self) -> u64 {
        let structure = self.realloc.structure_size();
        let volume = self.realloc.live_volume();
        if volume > 0 {
            self.max_settled_ratio = self.max_settled_ratio.max(structure as f64 / volume as f64);
        }
        structure
    }

    fn snapshot(&self) -> ShardStats {
        ShardStats {
            shard: self.shard,
            algorithm: self.realloc.name(),
            requests: self.requests,
            batches: self.batches,
            requests_coalesced: self.requests_coalesced,
            requests_cancelled: self.requests_cancelled,
            errors: self.errors,
            live_count: self.realloc.live_count(),
            live_volume: self.realloc.live_volume(),
            footprint: self.realloc.footprint(),
            structure_size: self.realloc.structure_size(),
            max_object_size: self.realloc.max_object_size(),
            total_moves: self.moves,
            total_moved_volume: self.moved_volume,
            migrations_in: self.migrations_in,
            migrations_out: self.migrations_out,
            migrated_volume_in: self.migrated_volume_in,
            migrated_volume_out: self.migrated_volume_out,
            defrag_runs: self.defrag_runs,
            defrag_moves: self.defrag_moves,
            substrate_bytes_written: self.substrate.as_ref().map_or(0, |s| s.bytes_written),
            substrate_bytes_in: self.substrate.as_ref().map_or(0, |s| s.bytes_migrated_in),
            substrate_bytes_out: self.substrate.as_ref().map_or(0, |s| s.bytes_migrated_out),
            substrate_verifications: self.substrate.as_ref().map_or(0, |s| s.verifications),
            wal_records: self.journal.as_ref().map_or(0, |j| j.writer.records()),
            wal_bytes: self.journal.as_ref().map_or(0, |j| j.writer.bytes()),
            group_commits: self.journal.as_ref().map_or(0, |j| j.writer.commits()),
            recoveries: self.recoveries,
            max_settled_ratio: self.max_settled_ratio,
            serve_sim_time: self.telemetry.as_ref().map_or(0.0, |t| t.serve_sim_us),
            migrate_sim_time: self.telemetry.as_ref().map_or(0.0, |t| t.migrate_sim_us),
            wal_commit_sim_time: self.telemetry.as_ref().map_or(0.0, |t| t.wal_commit_sim_us),
        }
    }

    /// The wall-clock-and-histogram side of this shard's observability —
    /// the deterministic counters live in [`ShardStats`]; this carries the
    /// latency/stall/commit distributions and the sim-time lanes.
    fn metrics(&self) -> ShardMetrics {
        self.telemetry.as_ref().map_or_else(
            || ShardMetrics::empty(self.shard),
            |t| t.snapshot(self.shard),
        )
    }

    fn reply(&self) -> ShardReply {
        ShardReply {
            stats: self.snapshot(),
            first_error: self.first_error,
            first_substrate_error: self.first_substrate_error.clone(),
        }
    }
}
