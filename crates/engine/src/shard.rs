//! The shard worker: one thread, one reallocator, one ledger.
//!
//! A worker loops on its command channel. `Command::Batch` carries a run
//! of requests (the engine batches to amortize channel overhead); the
//! other commands are *barriers* — the engine sends them after flushing its
//! pending batches, so by the time a reply arrives every earlier request
//! has been served. Workers never panic on bad requests: a rejected
//! insert/delete is counted, remembered (first occurrence), and serving
//! continues, mirroring how a real service would 400 one request without
//! tearing down the shard.
//!
//! The migration commands (`Command::MigrateOut` / `Command::MigrateIn`)
//! are the shard half of the engine's cross-shard rebalance protocol. In
//! barrier mode they arrive at a quiesce barrier; in online mode they arrive
//! in the ordinary command stream, where channel FIFO order *is* the freeze:
//! every request enqueued before the migrate-out is served before the object
//! leaves. Either way a migrate-out drains the reallocator before replying,
//! so the object is fully gone from this shard before the engine re-inserts
//! it elsewhere (no instant at which one id is live on two shards).

use std::collections::HashSet;
use std::sync::mpsc::{Receiver, Sender};

use realloc_common::{
    Extent, Ledger, ObjectId, OpKind, OpRecord, Outcome, ReallocError, Reallocator,
};
use workload_gen::Request;

use crate::rebalance::DefragSummary;
use crate::stats::ShardStats;

/// The first request a shard's reallocator rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the request in the shard's own stream (0-based). Migration
    /// failures (which are not client requests) reuse the index of the next
    /// client request.
    pub index: u64,
    /// The rejection.
    pub error: ReallocError,
}

/// Barrier reply: a stats snapshot plus any remembered error.
#[derive(Debug, Clone)]
pub(crate) struct ShardReply {
    pub stats: ShardStats,
    pub first_error: Option<ShardError>,
}

/// Everything a shard hands back when the engine shuts it down.
#[derive(Debug, Clone)]
pub struct ShardFinal {
    /// Final stats snapshot.
    pub stats: ShardStats,
    /// The shard's full per-request cost ledger, priceable post hoc under
    /// any cost function (the whole point of cost obliviousness). Empty
    /// when the engine was configured
    /// [`ledgerless`](crate::EngineConfig::ledgerless).
    pub ledger: Ledger,
    /// First rejected request, if any.
    pub first_error: Option<ShardError>,
}

/// What the engine sends down a shard's channel.
pub(crate) enum Command {
    /// Serve a run of requests in order.
    Batch(Vec<Request>),
    /// Complete deferred work (`Reallocator::quiesce`), then reply.
    Quiesce(Sender<ShardReply>),
    /// Reply with current stats (no state change).
    Snapshot(Sender<ShardReply>),
    /// Reply with the placements of all live objects, sorted by id.
    Extents(Sender<Vec<(ObjectId, Extent)>>),
    /// Rebalance protocol, outbound half: delete `ids` (they are being
    /// re-homed, not destroyed — ledgered as `MigrateOut`), drain deferred
    /// work so they are fully gone, then reply with the `(id, size)` of
    /// every object actually released. Per-object acks let the engine skip
    /// the inbound half for anything a broken reallocator refused to give
    /// up, and the acked *size* (not the planner's snapshot) is what the
    /// target shard inserts — so a delete + re-insert that changed an
    /// object's size between planning and execution (possible in online
    /// mode, where serving continues) cannot corrupt the transfer. Ids this
    /// shard no longer considers live are skipped silently: under a quiesce
    /// barrier that cannot happen, but an online rebalance races ordinary
    /// deletes, and a legitimately deleted object is not an error.
    MigrateOut {
        /// Objects leaving this shard.
        ids: Vec<ObjectId>,
        /// Barrier reply: shard state plus the released `(id, size)` pairs.
        reply: Sender<(ShardReply, Vec<(ObjectId, u64)>)>,
    },
    /// Rebalance protocol, inbound half: insert `objects` (ledgered as
    /// `MigrateIn`; the transfer itself is priced as a reallocation), then
    /// reply with the ids actually adopted.
    MigrateIn {
        /// `(id, size)` of each arriving object.
        objects: Vec<(ObjectId, u64)>,
        /// Barrier reply: shard state plus the adopted ids.
        reply: Sender<(ShardReply, Vec<ObjectId>)>,
    },
    /// Compute the Theorem 2.7 defrag schedule over this shard's live
    /// objects (sorted by id) at slack `eps`, ledger its moves, reply with
    /// the space/movement summary.
    Defrag {
        /// Footprint slack `ε` for the defragmenter (`0 < ε ≤ 1/2`).
        eps: f64,
        /// Summary reply.
        reply: Sender<DefragSummary>,
    },
    /// Final barrier: reply with stats + ledger and exit the thread.
    Finish(Sender<ShardFinal>),
}

/// Worker-thread state.
pub(crate) struct ShardWorker {
    shard: usize,
    realloc: Box<dyn Reallocator + Send>,
    record_ledger: bool,
    ledger: Ledger,
    /// Ids this shard believes live, by request history. The `Reallocator`
    /// trait cannot enumerate objects, so the worker tracks the population
    /// itself to answer [`Command::Extents`].
    live: HashSet<ObjectId>,
    requests: u64,
    batches: u64,
    errors: u64,
    first_error: Option<ShardError>,
    moves: u64,
    moved_volume: u64,
    migrations_in: u64,
    migrations_out: u64,
    migrated_volume_in: u64,
    migrated_volume_out: u64,
    defrag_runs: u64,
    defrag_moves: u64,
    /// Max over requests of `structure_after / volume_after`, maintained
    /// incrementally so it survives running ledgerless.
    max_settled_ratio: f64,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        realloc: Box<dyn Reallocator + Send>,
        record_ledger: bool,
    ) -> Self {
        ShardWorker {
            shard,
            realloc,
            record_ledger,
            ledger: Ledger::new(),
            live: HashSet::new(),
            requests: 0,
            batches: 0,
            errors: 0,
            first_error: None,
            moves: 0,
            moved_volume: 0,
            migrations_in: 0,
            migrations_out: 0,
            migrated_volume_in: 0,
            migrated_volume_out: 0,
            defrag_runs: 0,
            defrag_moves: 0,
            max_settled_ratio: 0.0,
        }
    }

    /// The worker loop. Returns when told to [`Command::Finish`] or when
    /// every engine-side sender is gone.
    pub(crate) fn run(mut self, rx: Receiver<Command>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Command::Batch(reqs) => {
                    self.batches += 1;
                    for req in reqs {
                        self.serve(req);
                    }
                }
                Command::Quiesce(reply) => {
                    let outcome = self.realloc.quiesce();
                    self.note_moves(&outcome);
                    let _ = reply.send(self.reply());
                }
                Command::Snapshot(reply) => {
                    let _ = reply.send(self.reply());
                }
                Command::Extents(reply) => {
                    let _ = reply.send(self.live_extents());
                }
                Command::MigrateOut { ids, reply } => {
                    let mut released = Vec::with_capacity(ids.len());
                    for id in ids {
                        if !self.live.contains(&id) {
                            // Deleted by serving traffic since the plan was
                            // drawn (online mode only) — nothing to re-home.
                            continue;
                        }
                        if let Some(size) = self.migrate_out(id) {
                            released.push((id, size));
                        }
                    }
                    // Drain deferred deletes (the deamortized structure logs
                    // them) so the objects are fully gone before the engine
                    // re-inserts them on their target shards.
                    let outcome = self.realloc.quiesce();
                    self.note_moves(&outcome);
                    let _ = reply.send((self.reply(), released));
                }
                Command::MigrateIn { objects, reply } => {
                    let mut adopted = Vec::with_capacity(objects.len());
                    for (id, size) in objects {
                        if self.migrate_in(id, size) {
                            adopted.push(id);
                        }
                    }
                    let _ = reply.send((self.reply(), adopted));
                }
                Command::Defrag { eps, reply } => {
                    let _ = reply.send(self.defrag(eps));
                }
                Command::Finish(reply) => {
                    let _ = reply.send(ShardFinal {
                        stats: self.snapshot(),
                        ledger: self.ledger,
                        first_error: self.first_error,
                    });
                    return;
                }
            }
        }
    }

    fn live_extents(&self) -> Vec<(ObjectId, Extent)> {
        let mut extents: Vec<(ObjectId, Extent)> = self
            .live
            .iter()
            .filter_map(|&id| self.realloc.extent_of(id).map(|e| (id, e)))
            .collect();
        extents.sort_by_key(|&(id, _)| id);
        extents
    }

    /// Serves one request, mirroring the single-threaded harness's ledger
    /// accounting exactly (same fields, same query points) so a sharded run
    /// is priceable the same way as a standalone one.
    fn serve(&mut self, req: Request) {
        let index = self.requests;
        self.requests += 1;
        let (kind, request_size, allocated, result) = match req {
            Request::Insert { id, size } => (
                OpKind::Insert,
                size,
                Some(size),
                self.realloc.insert(id, size),
            ),
            Request::Delete { id } => {
                // The object's size is only needed for the ledger record;
                // skip the lookup on the ledgerless fast path.
                let size = if self.record_ledger {
                    self.realloc.extent_of(id).map_or(0, |e| e.len)
                } else {
                    0
                };
                (OpKind::Delete, size, None, self.realloc.delete(id))
            }
        };
        match result {
            Ok(outcome) => {
                match req {
                    Request::Insert { id, .. } => {
                        self.live.insert(id);
                    }
                    Request::Delete { id } => {
                        self.live.remove(&id);
                    }
                }
                self.note_moves(&outcome);
                let structure = self.observe_space();
                if self.record_ledger {
                    self.ledger.record(
                        kind,
                        request_size,
                        allocated,
                        &outcome,
                        structure,
                        self.realloc.live_volume(),
                        self.realloc.max_object_size(),
                    );
                }
            }
            Err(error) => {
                self.errors += 1;
                self.first_error.get_or_insert(ShardError { index, error });
            }
        }
    }

    /// The outbound half of one cross-shard transfer: a delete that is
    /// ledgered as `MigrateOut` (the object lives on elsewhere) and counted
    /// in the migration telemetry, not in `requests`. Returns the released
    /// object's size, or `None` if the reallocator refused to let go.
    fn migrate_out(&mut self, id: ObjectId) -> Option<u64> {
        let size = self.realloc.extent_of(id).map_or(0, |e| e.len);
        match self.realloc.delete(id) {
            Ok(outcome) => {
                self.live.remove(&id);
                self.note_moves(&outcome);
                self.migrations_out += 1;
                self.migrated_volume_out += size;
                let structure = self.observe_space();
                if self.record_ledger {
                    self.ledger.push(OpRecord {
                        kind: OpKind::MigrateOut,
                        request_size: size,
                        allocated: None,
                        moved_sizes: outcome.moved_sizes().collect(),
                        checkpoints: outcome.checkpoints,
                        structure_after: structure,
                        peak_during: outcome.peak_structure_size.max(structure),
                        volume_after: self.realloc.live_volume(),
                        delta_after: self.realloc.max_object_size(),
                    });
                }
                Some(size)
            }
            Err(error) => {
                self.note_migration_error(error);
                None
            }
        }
    }

    /// The inbound half: an insert ledgered as `MigrateIn`. The transfer
    /// itself is a *reallocation* of the object (it was allocated once, on
    /// its original shard), so its size joins `moved_sizes` and the shard's
    /// move telemetry — cost functions price it like any other move.
    /// Returns whether the reallocator adopted the object.
    fn migrate_in(&mut self, id: ObjectId, size: u64) -> bool {
        match self.realloc.insert(id, size) {
            Ok(outcome) => {
                self.live.insert(id);
                self.note_moves(&outcome);
                self.moves += 1;
                self.moved_volume += size;
                self.migrations_in += 1;
                self.migrated_volume_in += size;
                let structure = self.observe_space();
                if self.record_ledger {
                    let mut moved_sizes = vec![size];
                    moved_sizes.extend(outcome.moved_sizes());
                    self.ledger.push(OpRecord {
                        kind: OpKind::MigrateIn,
                        request_size: size,
                        allocated: None,
                        moved_sizes,
                        checkpoints: outcome.checkpoints,
                        structure_after: structure,
                        peak_during: outcome.peak_structure_size.max(structure),
                        volume_after: self.realloc.live_volume(),
                        delta_after: self.realloc.max_object_size(),
                    });
                }
                true
            }
            Err(error) => {
                self.note_migration_error(error);
                false
            }
        }
    }

    /// Computes (and ledgers) the Theorem 2.7 compaction schedule over this
    /// shard's live objects, sorted by id.
    fn defrag(&mut self, eps: f64) -> DefragSummary {
        let extents = self.live_extents();
        let delta = self.realloc.max_object_size();
        match realloc_core::defragment(&extents, eps, |a, b| a.cmp(&b)) {
            Ok(report) => {
                self.defrag_runs += 1;
                self.defrag_moves += report.total_moves as u64;
                let structure = self.realloc.structure_size();
                if self.record_ledger {
                    self.ledger.push(OpRecord {
                        kind: OpKind::Defrag,
                        request_size: 0,
                        allocated: None,
                        moved_sizes: report
                            .ops
                            .iter()
                            .filter_map(|op| match op {
                                realloc_common::StorageOp::Move { to, .. } => Some(to.len),
                                _ => None,
                            })
                            .collect(),
                        checkpoints: 0,
                        structure_after: structure,
                        peak_during: report.peak_space.max(structure),
                        volume_after: self.realloc.live_volume(),
                        delta_after: delta,
                    });
                }
                DefragSummary {
                    shard: self.shard,
                    objects: extents.len(),
                    total_moves: report.total_moves as u64,
                    peak_space: report.peak_space,
                    budget: report.budget,
                    within_budget: report.peak_space <= report.budget + delta
                        && !report.prefix_suffix_collision,
                    error: None,
                }
            }
            Err(e) => DefragSummary {
                shard: self.shard,
                objects: extents.len(),
                total_moves: 0,
                peak_space: 0,
                budget: 0,
                within_budget: false,
                error: Some(e.to_string()),
            },
        }
    }

    fn note_migration_error(&mut self, error: ReallocError) {
        self.errors += 1;
        self.first_error.get_or_insert(ShardError {
            index: self.requests,
            error,
        });
    }

    fn note_moves(&mut self, outcome: &Outcome) {
        self.moves += outcome.move_count() as u64;
        self.moved_volume += outcome.moved_volume();
    }

    /// Folds the current space telemetry into `max_settled_ratio` and
    /// returns the structure size.
    fn observe_space(&mut self) -> u64 {
        let structure = self.realloc.structure_size();
        let volume = self.realloc.live_volume();
        if volume > 0 {
            self.max_settled_ratio = self.max_settled_ratio.max(structure as f64 / volume as f64);
        }
        structure
    }

    fn snapshot(&self) -> ShardStats {
        ShardStats {
            shard: self.shard,
            algorithm: self.realloc.name(),
            requests: self.requests,
            batches: self.batches,
            errors: self.errors,
            live_count: self.realloc.live_count(),
            live_volume: self.realloc.live_volume(),
            footprint: self.realloc.footprint(),
            structure_size: self.realloc.structure_size(),
            max_object_size: self.realloc.max_object_size(),
            total_moves: self.moves,
            total_moved_volume: self.moved_volume,
            migrations_in: self.migrations_in,
            migrations_out: self.migrations_out,
            migrated_volume_in: self.migrated_volume_in,
            migrated_volume_out: self.migrated_volume_out,
            defrag_runs: self.defrag_runs,
            defrag_moves: self.defrag_moves,
            max_settled_ratio: self.max_settled_ratio,
        }
    }

    fn reply(&self) -> ShardReply {
        ShardReply {
            stats: self.snapshot(),
            first_error: self.first_error,
        }
    }
}
