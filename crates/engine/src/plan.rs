//! Intra-batch coalescing: fold a batch of raw requests into the smaller
//! *planned* request sequence with the same net effect.
//!
//! The paper's amortized bounds (Theorems 2.1 and 2.5) charge per
//! *surviving* allocation, so work a batch both creates and destroys is
//! freedom the bounds never make the structure pay for. The planner cashes
//! that in before the reallocator sees anything:
//!
//! * an **insert later deleted in the same batch is cancelled** — the
//!   object never touches the reallocator, the substrate, or the WAL;
//! * a **delete followed by a reinsert of the same id becomes a single
//!   resize** (one delete + one insert at the final size), and **repeated
//!   resizes collapse to the last size**;
//! * a delete + reinsert **at the unchanged size is elided entirely**: the
//!   object's observable bytes are `pattern_for(id, len)`, a pure function
//!   of `(id, len)`, so the surviving object is byte-identical to the
//!   reinserted one.
//!
//! What is preserved: per-id request order (each id nets to at most one
//!  delete-then-insert pair), ack semantics (every raw request is counted
//! in `requests`, and requests the reallocator would have rejected are
//! rejected identically — the planner simulates liveness and predicts
//! `ZeroSize` / `DuplicateId` / `UnknownId` at the exact raw stream
//! indices), ledger faithfulness (the planned ops are ledgered like any
//! served request), and WAL group commits (the planned ops journal into
//! the batch's frame; recovery replays them to the same state).
//!
//! The liveness simulation assumes the reallocator's acceptance is purely
//! logical — insert rejects iff the id is live, delete rejects iff it is
//! not — which holds for every variant whose deletes complete eagerly.
//! A structure that defers deletes (the deamortized variant mid-flush) can
//! additionally reject a same-id reinsert the raw stream would also have
//! raced against; coalescing only ever *removes* such hazard windows.

use std::collections::HashMap;

use realloc_common::{ObjectId, ReallocError};
use workload_gen::Request;

/// One rejection the planner predicted, at its raw stream offset.
pub(crate) struct PlannedError {
    /// 0-based offset of the rejected request within the raw batch.
    pub offset: u64,
    /// The rejection the reallocator would have produced.
    pub error: ReallocError,
}

/// The folded batch: the planned request sequence plus the bookkeeping the
/// shard worker needs to keep its counters and error indices faithful to
/// the raw stream.
pub(crate) struct BatchPlan {
    /// Net requests to apply, each tagged with the raw offset of the
    /// request it stands for (the last one that produced the id's final
    /// state) — application errors attribute to that index. All deletes
    /// precede all inserts: cancelling space before claiming it keeps the
    /// transient footprint no worse than any raw interleaving the bounds
    /// already allow.
    pub planned: Vec<(u64, Request)>,
    /// Predicted rejections, in raw stream order.
    pub errors: Vec<PlannedError>,
    /// Valid raw requests elided by merging within a surviving chain
    /// (delete + reinsert pairs collapsed into one resize or into
    /// nothing).
    pub coalesced: u64,
    /// Valid raw requests cancelled outright (insert → delete chains whose
    /// object never existed before nor after the batch).
    pub cancelled: u64,
}

/// Per-id simulated state while walking the raw batch.
struct Track {
    /// Size before the batch (`None` = not live).
    before: Option<u64>,
    /// Simulated size now.
    now: Option<u64>,
    /// Raw requests accepted for this id so far.
    valid: u64,
    /// Offset of the last accepted insert / delete (error attribution).
    last_insert: u64,
    last_delete: u64,
}

impl BatchPlan {
    /// Folds `reqs` given the shard's pre-batch state: `live_size(id)`
    /// returns the live object's size, or `None` when the id is not live.
    pub(crate) fn build(
        reqs: &[Request],
        mut live_size: impl FnMut(ObjectId) -> Option<u64>,
    ) -> BatchPlan {
        let mut tracks: HashMap<ObjectId, Track> = HashMap::with_capacity(reqs.len());
        // First-touch order, so planned ops apply deterministically.
        let mut order: Vec<ObjectId> = Vec::new();
        let mut errors = Vec::new();
        for (offset, req) in reqs.iter().enumerate() {
            let offset = offset as u64;
            let id = req.id();
            let track = tracks.entry(id).or_insert_with(|| {
                order.push(id);
                let size = live_size(id);
                Track {
                    before: size,
                    now: size,
                    valid: 0,
                    last_insert: 0,
                    last_delete: 0,
                }
            });
            match *req {
                Request::Insert { size: 0, .. } => {
                    errors.push(PlannedError {
                        offset,
                        error: ReallocError::ZeroSize,
                    });
                }
                Request::Insert { size, .. } => {
                    if track.now.is_some() {
                        errors.push(PlannedError {
                            offset,
                            error: ReallocError::DuplicateId(id),
                        });
                    } else {
                        track.now = Some(size);
                        track.valid += 1;
                        track.last_insert = offset;
                    }
                }
                Request::Delete { .. } => {
                    if track.now.is_none() {
                        errors.push(PlannedError {
                            offset,
                            error: ReallocError::UnknownId(id),
                        });
                    } else {
                        track.now = None;
                        track.valid += 1;
                        track.last_delete = offset;
                    }
                }
            }
        }

        let mut deletes = Vec::new();
        let mut inserts = Vec::new();
        let mut coalesced = 0u64;
        let mut cancelled = 0u64;
        for id in order {
            let t = &tracks[&id];
            match (t.before, t.now) {
                // Never existed and does not exist: every accepted request
                // in the chain is cancelled outright.
                (None, None) => cancelled += t.valid,
                (None, Some(size)) => {
                    inserts.push((t.last_insert, Request::Insert { id, size }));
                    coalesced += t.valid - 1;
                }
                (Some(_), None) => {
                    deletes.push((t.last_delete, Request::Delete { id }));
                    coalesced += t.valid - 1;
                }
                // Survives at the unchanged size: bytes regenerate as
                // `pattern_for(id, len)`, so the chain is elided entirely.
                (Some(s0), Some(s1)) if s0 == s1 => coalesced += t.valid,
                // Survives resized: the whole chain becomes one resize.
                (Some(_), Some(size)) => {
                    deletes.push((t.last_delete, Request::Delete { id }));
                    inserts.push((t.last_insert, Request::Insert { id, size }));
                    coalesced += t.valid - 2;
                }
            }
        }
        deletes.append(&mut inserts);
        BatchPlan {
            planned: deletes,
            errors,
            coalesced,
            cancelled,
        }
    }

    /// Number of planned requests the worker will actually apply.
    pub(crate) fn applied(&self) -> u64 {
        self.planned.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    fn build(reqs: &[Request], live: &[(u64, u64)]) -> BatchPlan {
        BatchPlan::build(reqs, |oid| {
            live.iter().find(|&&(i, _)| ObjectId(i) == oid).map(|t| t.1)
        })
    }

    #[test]
    fn insert_then_delete_is_cancelled() {
        let plan = build(
            &[
                Request::Insert { id: id(1), size: 8 },
                Request::Delete { id: id(1) },
            ],
            &[],
        );
        assert!(plan.planned.is_empty());
        assert!(plan.errors.is_empty());
        assert_eq!(plan.cancelled, 2);
        assert_eq!(plan.coalesced, 0);
    }

    #[test]
    fn delete_then_reinsert_becomes_one_resize() {
        let plan = build(
            &[
                Request::Delete { id: id(1) },
                Request::Insert { id: id(1), size: 9 },
            ],
            &[(1, 4)],
        );
        assert_eq!(
            plan.planned,
            vec![
                (0, Request::Delete { id: id(1) }),
                (1, Request::Insert { id: id(1), size: 9 }),
            ]
        );
        assert_eq!(plan.coalesced, 0);
        assert_eq!(plan.cancelled, 0);
    }

    #[test]
    fn repeated_resizes_collapse_to_the_last_size() {
        let plan = build(
            &[
                Request::Delete { id: id(1) },
                Request::Insert { id: id(1), size: 9 },
                Request::Delete { id: id(1) },
                Request::Insert { id: id(1), size: 3 },
            ],
            &[(1, 4)],
        );
        assert_eq!(
            plan.planned,
            vec![
                (2, Request::Delete { id: id(1) }),
                (3, Request::Insert { id: id(1), size: 3 }),
            ]
        );
        // Four valid requests became two applied ones.
        assert_eq!(plan.coalesced, 2);
    }

    #[test]
    fn unchanged_size_reinsert_is_elided_entirely() {
        let plan = build(
            &[
                Request::Delete { id: id(1) },
                Request::Insert { id: id(1), size: 4 },
            ],
            &[(1, 4)],
        );
        assert!(plan.planned.is_empty());
        assert_eq!(plan.coalesced, 2);
        assert_eq!(plan.cancelled, 0);
    }

    #[test]
    fn errors_are_predicted_at_their_raw_offsets() {
        let plan = build(
            &[
                Request::Insert { id: id(1), size: 0 }, // ZeroSize
                Request::Insert { id: id(2), size: 5 }, // live → Duplicate
                Request::Delete { id: id(3) },          // dead → Unknown
                Request::Insert { id: id(4), size: 7 }, // fine
                Request::Insert { id: id(4), size: 7 }, // now live → Duplicate
            ],
            &[(2, 5)],
        );
        let offsets: Vec<u64> = plan.errors.iter().map(|e| e.offset).collect();
        assert_eq!(offsets, vec![0, 1, 2, 4]);
        assert!(matches!(plan.errors[0].error, ReallocError::ZeroSize));
        assert!(matches!(
            plan.errors[1].error,
            ReallocError::DuplicateId(i) if i == id(2)
        ));
        assert!(matches!(
            plan.errors[2].error,
            ReallocError::UnknownId(i) if i == id(3)
        ));
        assert_eq!(
            plan.planned,
            vec![(3, Request::Insert { id: id(4), size: 7 })]
        );
    }

    #[test]
    fn deletes_apply_before_inserts() {
        let plan = build(
            &[
                Request::Insert { id: id(9), size: 2 },
                Request::Delete { id: id(1) },
            ],
            &[(1, 4)],
        );
        assert_eq!(
            plan.planned,
            vec![
                (1, Request::Delete { id: id(1) }),
                (0, Request::Insert { id: id(9), size: 2 }),
            ]
        );
    }

    #[test]
    fn interleaved_chains_net_independently() {
        // a: live(4) → deleted; b: fresh insert survives; c: insert+delete
        // cancelled; d: live(6) resized to 2 through two rounds.
        let plan = build(
            &[
                Request::Delete { id: id(4) },
                Request::Insert { id: id(4), size: 5 },
                Request::Insert { id: id(2), size: 3 },
                Request::Delete { id: id(1) },
                Request::Insert { id: id(3), size: 1 },
                Request::Delete { id: id(4) },
                Request::Insert { id: id(4), size: 2 },
                Request::Delete { id: id(3) },
            ],
            &[(1, 4), (4, 6)],
        );
        assert_eq!(
            plan.planned,
            vec![
                (5, Request::Delete { id: id(4) }),
                (3, Request::Delete { id: id(1) }),
                (6, Request::Insert { id: id(4), size: 2 }),
                (2, Request::Insert { id: id(2), size: 3 }),
            ]
        );
        assert_eq!(plan.cancelled, 2); // c's pair
        assert_eq!(plan.coalesced, 2); // d's intermediate resize
        assert_eq!(plan.applied(), 4);
    }
}
