//! Per-shard and aggregate serving statistics.

/// Telemetry for one shard, captured at a barrier
/// ([`Engine::quiesce`](crate::Engine::quiesce) /
/// [`Engine::snapshot`](crate::Engine::snapshot)).
///
/// Everything here is a pure function of the shard's request stream, so two
/// runs over the same workload with the same shard count produce identical
/// values — the engine's determinism tests compare whole [`EngineStats`]
/// with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// `Reallocator::name()` of the algorithm this shard runs.
    pub algorithm: &'static str,
    /// Requests served (including failed ones).
    pub requests: u64,
    /// Batches received over the channel.
    pub batches: u64,
    /// Requests the batch planner merged within surviving chains (a
    /// delete + reinsert collapsed into one resize, or elided entirely at
    /// an unchanged size). Zero unless the engine runs
    /// [`coalescing`](crate::EngineConfig::coalescing).
    pub requests_coalesced: u64,
    /// Requests the batch planner cancelled outright: insert + delete
    /// chains of an object that never existed outside its batch, which
    /// therefore never touched the reallocator, substrate, or WAL.
    pub requests_cancelled: u64,
    /// Requests rejected by the reallocator (duplicate/unknown id, zero
    /// size). The first one is surfaced as an [`crate::EngineError`].
    pub errors: u64,
    /// Number of active objects.
    pub live_count: usize,
    /// Total volume `V_i` of active objects.
    pub live_volume: u64,
    /// One past the largest address currently storing an object.
    pub footprint: u64,
    /// End of the shard structure's last segment (`≥ footprint`).
    pub structure_size: u64,
    /// `∆_i`: largest object this shard has seen.
    pub max_object_size: u64,
    /// Reallocations performed (including quiesce-time drains and the
    /// cross-shard transfers this shard received — a migration *is* a
    /// reallocation of the object).
    pub total_moves: u64,
    /// Volume moved by those reallocations, in cells.
    pub total_moved_volume: u64,
    /// Objects this shard received from rebalance/resize migrations.
    pub migrations_in: u64,
    /// Objects this shard handed off to rebalance/resize migrations.
    pub migrations_out: u64,
    /// Volume received via migrations, in cells.
    pub migrated_volume_in: u64,
    /// Volume handed off via migrations, in cells.
    pub migrated_volume_out: u64,
    /// Theorem 2.7 defrag passes run on this shard.
    pub defrag_runs: u64,
    /// Moves across those defrag schedules.
    pub defrag_moves: u64,
    /// Cells physically written into this shard's substrate (allocations,
    /// flush copies, and adopted transfers). Zero without a substrate.
    pub substrate_bytes_written: u64,
    /// Cells that arrived via verified cross-shard transfers.
    pub substrate_bytes_in: u64,
    /// Cells shipped out to other shards' address spaces.
    pub substrate_bytes_out: u64,
    /// Full extent + byte verification scans this shard has run.
    pub substrate_verifications: u64,
    /// WAL records committed by this shard (one per applied physical op,
    /// transfer half, or route flip). Zero without a WAL.
    pub wal_records: u64,
    /// Frame bytes this shard's WAL has written (headers included).
    pub wal_bytes: u64,
    /// Group commits (framed fsyncs) this shard's WAL has performed — the
    /// commit-coalescing counter: `wal_records / group_commits` is the
    /// batch's amortization factor, and
    /// [`DeviceModel::time_of_commit`](storage_sim::DeviceModel::time_of_commit)
    /// prices the schedule.
    pub group_commits: u64,
    /// How many times this worker's state was rebuilt by
    /// [`Engine::recover`](crate::Engine::recover) (0 for a worker that
    /// never crashed).
    pub recoveries: u64,
    /// Max over requests of `structure_after / volume_after` (the ledger's
    /// settled-space competitive ratio for this shard).
    pub max_settled_ratio: f64,
    /// Simulated device time (µs) spent serving requests — the configured
    /// [`DeviceProfile`](crate::DeviceProfile) pricing every allocate,
    /// move, and checkpoint barrier the serving path emitted. Zero without
    /// a profile. Deterministic: a pure function of the shard's op stream,
    /// summed in apply order.
    pub serve_sim_time: f64,
    /// Simulated device time (µs) spent on cross-shard migration work
    /// (departures, arrivals, and their drains). Zero without a profile.
    pub migrate_sim_time: f64,
    /// Simulated device time (µs) syncing WAL group commits — each frame
    /// priced by
    /// [`DeviceModel::time_of_commit`](storage_sim::DeviceModel::time_of_commit)
    /// over its bytes. Zero without a profile or without a WAL.
    pub wal_commit_sim_time: f64,
}

/// Aggregated view over all shards, as returned by the engine's barriers.
///
/// Per-shard rows are kept verbatim in [`per_shard`](Self::per_shard); the
/// methods fold them into the global quantities. Volumes, footprints, moves
/// and request counts *add* across shards (disjoint address spaces and
/// disjoint object populations); `∆` and competitive ratios take the *max*
/// (the worst shard bounds the aggregate guarantee).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ShardStats>,
}

impl EngineStats {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Total requests served across shards.
    pub fn requests(&self) -> u64 {
        self.per_shard.iter().map(|s| s.requests).sum()
    }

    /// Total batches delivered across shards.
    pub fn batches(&self) -> u64 {
        self.per_shard.iter().map(|s| s.batches).sum()
    }

    /// Total requests merged by batch planners across shards.
    pub fn requests_coalesced(&self) -> u64 {
        self.per_shard.iter().map(|s| s.requests_coalesced).sum()
    }

    /// Total requests cancelled by batch planners across shards.
    pub fn requests_cancelled(&self) -> u64 {
        self.per_shard.iter().map(|s| s.requests_cancelled).sum()
    }

    /// Total rejected requests across shards.
    pub fn errors(&self) -> u64 {
        self.per_shard.iter().map(|s| s.errors).sum()
    }

    /// Total active objects across shards.
    pub fn live_count(&self) -> usize {
        self.per_shard.iter().map(|s| s.live_count).sum()
    }

    /// Global live volume `Σ V_i`.
    pub fn live_volume(&self) -> u64 {
        self.per_shard.iter().map(|s| s.live_volume).sum()
    }

    /// Global footprint `Σ footprint_i` (shards own disjoint address
    /// spaces, so footprints add).
    pub fn footprint(&self) -> u64 {
        self.per_shard.iter().map(|s| s.footprint).sum()
    }

    /// Global structure size `Σ structure_i`.
    pub fn structure_size(&self) -> u64 {
        self.per_shard.iter().map(|s| s.structure_size).sum()
    }

    /// Global `∆ = max_i ∆_i`.
    pub fn max_object_size(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.max_object_size)
            .max()
            .unwrap_or(0)
    }

    /// Total reallocations across shards.
    pub fn total_moves(&self) -> u64 {
        self.per_shard.iter().map(|s| s.total_moves).sum()
    }

    /// Total moved volume across shards, in cells.
    pub fn total_moved_volume(&self) -> u64 {
        self.per_shard.iter().map(|s| s.total_moved_volume).sum()
    }

    /// Largest per-shard live volume `max_i V_i` — the quantity a skewed
    /// delete pattern inflates and a rebalance pushes back toward the mean.
    pub fn max_shard_volume(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.live_volume)
            .max()
            .unwrap_or(0)
    }

    /// Mean per-shard live volume `Σ V_i / N` (0.0 with no shards).
    pub fn mean_shard_volume(&self) -> f64 {
        if self.per_shard.is_empty() {
            0.0
        } else {
            self.live_volume() as f64 / self.per_shard.len() as f64
        }
    }

    /// The volume imbalance ratio `max_i V_i / mean V_i` — 1.0 is perfectly
    /// balanced; `N` means one shard holds everything. Defined as 1.0 for
    /// an empty engine (no volume is vacuously balanced). This is the
    /// observable [`Engine::rebalance`](crate::Engine::rebalance) drives
    /// down.
    pub fn imbalance_ratio(&self) -> f64 {
        let mean = self.mean_shard_volume();
        if mean == 0.0 {
            1.0
        } else {
            self.max_shard_volume() as f64 / mean
        }
    }

    /// Total objects received via cross-shard migrations. (Every migration
    /// is counted once, on the receiving side; `migrations_out` sums to the
    /// same total across a rebalance.)
    pub fn migrations(&self) -> u64 {
        self.per_shard.iter().map(|s| s.migrations_in).sum()
    }

    /// Total volume received via cross-shard migrations, in cells.
    pub fn migrated_volume(&self) -> u64 {
        self.per_shard.iter().map(|s| s.migrated_volume_in).sum()
    }

    /// Total objects handed off to cross-shard migrations. Equal to
    /// [`migrations`](Self::migrations) once every transfer's inbound half
    /// has landed; during an [online
    /// rebalance](crate::Engine::rebalance_online) the difference between
    /// the two is the in-flight batch (and a broken reallocator rejecting
    /// adoptions leaves it permanently positive — a desync telltale).
    pub fn migrations_out(&self) -> u64 {
        self.per_shard.iter().map(|s| s.migrations_out).sum()
    }

    /// Total volume handed off via cross-shard migrations, in cells.
    pub fn migrated_volume_out(&self) -> u64 {
        self.per_shard.iter().map(|s| s.migrated_volume_out).sum()
    }

    /// Total moves across all shards' Theorem 2.7 defrag schedules.
    pub fn defrag_moves(&self) -> u64 {
        self.per_shard.iter().map(|s| s.defrag_moves).sum()
    }

    /// Total cells physically written across all shard substrates
    /// (allocations + flush copies + adopted transfers). Zero when the
    /// engine runs without substrates.
    pub fn bytes_written(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.substrate_bytes_written)
            .sum()
    }

    /// Total cells that crossed shard address spaces, counted on arrival
    /// (each verified against its shipped checksum). Equals the ledger's
    /// migrate-in volume when every transfer landed.
    pub fn bytes_migrated_in(&self) -> u64 {
        self.per_shard.iter().map(|s| s.substrate_bytes_in).sum()
    }

    /// Total cells read out of shard substrates for cross-shard transfers.
    /// Equals the ledger's migrate-out volume: every released object's
    /// bytes were physically copied out of its source address space.
    pub fn bytes_migrated_out(&self) -> u64 {
        self.per_shard.iter().map(|s| s.substrate_bytes_out).sum()
    }

    /// Total full verification scans run across shards.
    pub fn substrate_verifications(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.substrate_verifications)
            .sum()
    }

    /// Total WAL records committed across shards. Zero without a WAL.
    pub fn wal_records(&self) -> u64 {
        self.per_shard.iter().map(|s| s.wal_records).sum()
    }

    /// Total WAL frame bytes written across shards.
    pub fn wal_bytes(&self) -> u64 {
        self.per_shard.iter().map(|s| s.wal_bytes).sum()
    }

    /// Total group commits (framed fsyncs) across shards. With group
    /// commit, many records share one frame:
    /// `wal_records() / group_commits()` is the fleet's amortization
    /// factor.
    pub fn group_commits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.group_commits).sum()
    }

    /// How many times the fleet has been recovered (max over shards: every
    /// shard of a recovered fleet carries the same count).
    pub fn recoveries(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.recoveries)
            .max()
            .unwrap_or(0)
    }

    /// Total simulated device time (µs) spent serving across shards. Zero
    /// without a [`DeviceProfile`](crate::DeviceProfile).
    pub fn serve_sim_time(&self) -> f64 {
        self.per_shard.iter().map(|s| s.serve_sim_time).sum()
    }

    /// Total simulated device time (µs) on migration work across shards.
    pub fn migrate_sim_time(&self) -> f64 {
        self.per_shard.iter().map(|s| s.migrate_sim_time).sum()
    }

    /// Total simulated device time (µs) syncing WAL group commits across
    /// shards.
    pub fn wal_commit_sim_time(&self) -> f64 {
        self.per_shard.iter().map(|s| s.wal_commit_sim_time).sum()
    }

    /// Total simulated device time (µs), all lanes.
    pub fn sim_time(&self) -> f64 {
        self.serve_sim_time() + self.migrate_sim_time() + self.wal_commit_sim_time()
    }

    /// The worst per-shard settled-space ratio — the aggregate's effective
    /// footprint competitive ratio, since `Σ structure_i ≤ (max_i a_i)·Σ V_i`.
    pub fn worst_settled_ratio(&self) -> f64 {
        self.per_shard
            .iter()
            .map(|s| s.max_settled_ratio)
            .fold(0.0, f64::max)
    }

    /// Global settled ratio right now: `Σ structure_i / Σ V_i` (1.0 when
    /// empty).
    pub fn settled_ratio(&self) -> f64 {
        let v = self.live_volume();
        if v == 0 {
            1.0
        } else {
            self.structure_size() as f64 / v as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: usize, volume: u64, structure: u64, delta: u64) -> ShardStats {
        ShardStats {
            shard: i,
            algorithm: "test",
            requests: 10,
            batches: 2,
            requests_coalesced: 0,
            requests_cancelled: 0,
            errors: 0,
            live_count: 3,
            live_volume: volume,
            footprint: structure - 1,
            structure_size: structure,
            max_object_size: delta,
            total_moves: 5,
            total_moved_volume: 50,
            migrations_in: 0,
            migrations_out: 0,
            migrated_volume_in: 0,
            migrated_volume_out: 0,
            defrag_runs: 0,
            defrag_moves: 0,
            substrate_bytes_written: 0,
            substrate_bytes_in: 0,
            substrate_bytes_out: 0,
            substrate_verifications: 0,
            wal_records: 0,
            wal_bytes: 0,
            group_commits: 0,
            recoveries: 0,
            max_settled_ratio: structure as f64 / volume as f64,
            serve_sim_time: 0.0,
            migrate_sim_time: 0.0,
            wal_commit_sim_time: 0.0,
        }
    }

    #[test]
    fn aggregates_sum_and_max() {
        let stats = EngineStats {
            per_shard: vec![shard(0, 100, 140, 32), shard(1, 50, 60, 64)],
        };
        assert_eq!(stats.shards(), 2);
        assert_eq!(stats.requests(), 20);
        assert_eq!(stats.live_volume(), 150);
        assert_eq!(stats.structure_size(), 200);
        assert_eq!(stats.footprint(), 198);
        assert_eq!(stats.max_object_size(), 64);
        assert_eq!(stats.total_moves(), 10);
        assert_eq!(stats.total_moved_volume(), 100);
        assert!((stats.worst_settled_ratio() - 1.4).abs() < 1e-12);
        assert!((stats.settled_ratio() - 200.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn empty_engine_is_benign() {
        let stats = EngineStats { per_shard: vec![] };
        assert_eq!(stats.live_volume(), 0);
        assert_eq!(stats.max_object_size(), 0);
        assert_eq!(stats.settled_ratio(), 1.0);
        assert_eq!(stats.worst_settled_ratio(), 0.0);
        assert_eq!(stats.imbalance_ratio(), 1.0);
        assert_eq!(stats.max_shard_volume(), 0);
        assert_eq!(stats.migrations(), 0);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let stats = EngineStats {
            per_shard: vec![
                shard(0, 300, 310, 8),
                shard(1, 50, 60, 8),
                shard(2, 50, 60, 8),
            ],
        };
        // mean = 400/3, max = 300 → ratio = 2.25.
        assert_eq!(stats.max_shard_volume(), 300);
        assert!((stats.mean_shard_volume() - 400.0 / 3.0).abs() < 1e-12);
        assert!((stats.imbalance_ratio() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn zero_volume_engine_counts_as_balanced() {
        let stats = EngineStats {
            per_shard: vec![shard(0, 0, 1, 0), shard(1, 0, 1, 0)],
        };
        assert_eq!(stats.imbalance_ratio(), 1.0);
    }

    #[test]
    fn migration_counters_aggregate() {
        let mut a = shard(0, 100, 140, 32);
        a.migrations_in = 3;
        a.migrated_volume_in = 30;
        a.defrag_moves = 7;
        a.substrate_bytes_written = 130;
        a.substrate_bytes_in = 30;
        a.substrate_verifications = 2;
        let mut b = shard(1, 50, 60, 64);
        b.migrations_out = 3;
        b.migrated_volume_out = 30;
        b.substrate_bytes_written = 50;
        b.substrate_bytes_out = 30;
        b.substrate_verifications = 2;
        let stats = EngineStats {
            per_shard: vec![a, b],
        };
        assert_eq!(stats.migrations(), 3);
        assert_eq!(stats.migrated_volume(), 30);
        assert_eq!(stats.migrations_out(), 3);
        assert_eq!(stats.migrated_volume_out(), 30);
        assert_eq!(stats.defrag_moves(), 7);
        assert_eq!(stats.bytes_written(), 180);
        assert_eq!(stats.bytes_migrated_in(), 30);
        assert_eq!(stats.bytes_migrated_out(), 30);
        assert_eq!(stats.substrate_verifications(), 4);
    }

    #[test]
    fn wal_counters_sum_and_recoveries_take_the_max() {
        let mut a = shard(0, 100, 140, 32);
        a.wal_records = 12;
        a.wal_bytes = 400;
        a.group_commits = 3;
        a.recoveries = 1;
        let mut b = shard(1, 50, 60, 64);
        b.wal_records = 4;
        b.wal_bytes = 120;
        b.group_commits = 2;
        b.recoveries = 1;
        let stats = EngineStats {
            per_shard: vec![a, b],
        };
        assert_eq!(stats.wal_records(), 16);
        assert_eq!(stats.wal_bytes(), 520);
        assert_eq!(stats.group_commits(), 5);
        // One fleet recovery shows as 1, not shards × 1.
        assert_eq!(stats.recoveries(), 1);
    }

    #[test]
    fn sim_time_sums_across_shards_and_lanes() {
        let mut a = shard(0, 100, 140, 32);
        a.serve_sim_time = 10.0;
        a.migrate_sim_time = 2.0;
        a.wal_commit_sim_time = 1.0;
        let mut b = shard(1, 50, 60, 64);
        b.serve_sim_time = 5.0;
        b.wal_commit_sim_time = 0.5;
        let stats = EngineStats {
            per_shard: vec![a, b],
        };
        assert_eq!(stats.serve_sim_time(), 15.0);
        assert_eq!(stats.migrate_sim_time(), 2.0);
        assert_eq!(stats.wal_commit_sim_time(), 1.5);
        assert_eq!(stats.sim_time(), 18.5);
    }
}
