//! Crash recovery: rebuild a fleet from its per-shard checkpoints and
//! write-ahead logs.
//!
//! [`Engine::recover`] is the read side of the durability protocol the
//! shard workers write (see [`crate::shard`] and [`storage_sim::wal`]).
//! Each shard's durable state is a checkpoint (its full live layout at
//! some epoch) plus a log suffix (every group-committed op since). The
//! logs are *independent* — each shard truncates its own at its own
//! barriers, and a crash tears them at different points — so recovery has
//! to reconcile a fleet-wide logical state from per-shard files that need
//! not agree on how far a cross-shard migration got:
//!
//! 1. **Fold** each shard's checkpoint + replayable log suffix into its
//!    last durable live set — one thread per shard, since the logs are
//!    independent; the per-shard folds are merged in shard index order,
//!    keeping the result byte-identical to a sequential fold. Frames
//!    whose epoch predates the checkpoint are skipped (they survive
//!    only when a crash hit between the checkpoint rename and the log
//!    truncation — the checkpoint already subsumes them); a torn tail
//!    was already discarded by the frame reader.
//! 2. **Reconcile** migrations across shards by transfer sequence number.
//!    An id live on two shards (source log truncated below its
//!    `MigrateOut`, target log kept its `MigrateIn`) keeps the copy with
//!    the higher claim — the later arrival — and drops the rest. A
//!    `MigrateOut` with no matching `MigrateIn` anywhere and its id live
//!    nowhere is a transfer that died in flight: the object is
//!    resurrected on its source shard (content is regenerable — see
//!    below). Either way every id ends live on exactly one shard.
//! 3. **Prove** content. The log stores digests, not payloads: a live
//!    object's bytes are always `pattern_for(id, len)` (allocations write
//!    the pattern; moves and transfers are byte-faithful), so recovery
//!    regenerates each object's content and requires its checksum to
//!    equal the journaled digest. A mismatch is a hard
//!    [`EngineError::Wal`] — the log is lying about what was stored.
//! 4. **Re-derive routing** from physical ownership: a fresh
//!    [`TableRouter`] gets an assignment exactly where its rendezvous
//!    fallback disagrees with the shard that owns the id. Routing
//!    therefore *provably* matches ownership — it is computed from it.
//! 5. **Reseed** a fresh fleet through the normal insert path (the
//!    derived router lands every object on its owner), then quiesce —
//!    which checkpoints the rebuilt state and truncates the logs — and,
//!    when substrates are on, run the full byte-verification scan.
//!
//! Placements within a shard may differ from the pre-crash layout (the
//! reallocator re-allocates); the guarantee is *logical* state plus byte
//! fidelity, not placement stability. Recovery journals its own reseeding
//! appends before its closing checkpoint, so a crash *during* recovery
//! recovers again.

use std::collections::BTreeMap;
use std::path::Path;

use realloc_common::{BoxedReallocator, ObjectId, TableRouter};
use realloc_telemetry::EventJournal;
use storage_sim::wal::{checkpoint_path, read_checkpoint, read_wal, wal_path};
use storage_sim::{checksum, pattern_for, WalRecord};

use crate::engine::{Engine, EngineConfig, EngineError};
use crate::substrate::SubstrateReport;

/// What [`Engine::recover`] rebuilt, and from what.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Shards recovered.
    pub shards: usize,
    /// Objects restored from checkpoints (before log replay).
    pub checkpoint_objects: u64,
    /// Group-commit frames replayed across all logs.
    pub replayed_groups: u64,
    /// WAL records replayed across all logs.
    pub replayed_records: u64,
    /// Live objects in the rebuilt fleet.
    pub objects: u64,
    /// Live volume of the rebuilt fleet.
    pub volume: u64,
    /// Objects whose transfer died in flight (a journaled `MigrateOut`
    /// with no surviving `MigrateIn`), restored on their source shard.
    pub resurrected: Vec<ObjectId>,
    /// Ids found live on more than one shard (per-log truncation skew
    /// around a migration); the stale copies were dropped in favor of the
    /// latest arrival.
    pub dropped_duplicates: Vec<ObjectId>,
    /// Routing-table assignments the recovered fleet needed — ids whose
    /// owning shard differs from the fresh router's rendezvous fallback.
    pub route_assignments: u64,
    /// Per-shard byte-verification reports (empty without substrates).
    pub substrate: Vec<SubstrateReport>,
}

/// One object's folded durable state on one shard.
struct Tracked {
    size: u64,
    digest: u64,
    /// Transfer sequence number that brought the object here (0 for a
    /// plain allocation). When truncation skew leaves an id live on two
    /// shards, the higher claim — the later arrival — wins.
    claim: u64,
}

fn wal_err(detail: String) -> EngineError {
    EngineError::Wal { detail }
}

/// One shard's Phase-1 fold: its durable live set plus everything the
/// cross-shard reconcile needs. Produced independently per shard — logs
/// never reference each other — so the folds run on parallel threads
/// and are merged in shard index order, which keeps recovery
/// byte-deterministic (same owner map, same report, same ordering of
/// duplicates and resurrections as the old sequential fold).
struct ShardFold {
    live: BTreeMap<ObjectId, Tracked>,
    /// Every journaled `MigrateOut` as (xfer, id, size, source shard).
    outs: Vec<(u64, ObjectId, u64, usize)>,
    /// Transfer sequence numbers whose arrival survived in this log.
    arrived: Vec<u64>,
    max_xfer: u64,
    checkpoint_objects: u64,
    replayed_groups: u64,
    replayed_records: u64,
}

/// Folds shard `shard`'s checkpoint + replayable log suffix into its
/// last durable live set (Phase 1 of [`Engine::recover`], for one
/// shard). Frames whose epoch predates the checkpoint are skipped; a
/// torn tail was already discarded by the frame reader.
fn fold_shard(dir: &Path, shard: usize) -> Result<ShardFold, EngineError> {
    let mut fold = ShardFold {
        live: BTreeMap::new(),
        outs: Vec::new(),
        arrived: Vec::new(),
        max_xfer: 0,
        checkpoint_objects: 0,
        replayed_groups: 0,
        replayed_records: 0,
    };
    let ckpt = read_checkpoint(&checkpoint_path(dir, shard))
        .map_err(|e| wal_err(format!("shard {shard} checkpoint: {e}")))?;
    let epoch = ckpt.as_ref().map_or(0, |c| c.epoch);
    for entry in ckpt.into_iter().flat_map(|c| c.entries) {
        fold.checkpoint_objects += 1;
        fold.live.insert(
            entry.id,
            Tracked {
                size: entry.len,
                digest: entry.digest,
                claim: 0,
            },
        );
    }
    let groups =
        read_wal(&wal_path(dir, shard)).map_err(|e| wal_err(format!("shard {shard} wal: {e}")))?;
    for group in groups {
        if group.epoch < epoch {
            // Pre-checkpoint frames survive only a crash between the
            // checkpoint rename and the truncation; the checkpoint
            // subsumes them.
            continue;
        }
        fold.replayed_groups += 1;
        for record in group.records {
            fold.replayed_records += 1;
            match record {
                WalRecord::Allocate {
                    id, len, digest, ..
                } => {
                    fold.live.insert(
                        id,
                        Tracked {
                            size: len,
                            digest,
                            claim: 0,
                        },
                    );
                }
                // Moves relocate within the shard; the logical live set
                // (and the regenerable content) is unchanged.
                WalRecord::Move { .. } => {}
                WalRecord::Free { id, .. } => {
                    fold.live.remove(&id);
                }
                WalRecord::MigrateOut { id, size, xfer } => {
                    fold.live.remove(&id);
                    fold.outs.push((xfer, id, size, shard));
                    fold.max_xfer = fold.max_xfer.max(xfer);
                }
                WalRecord::MigrateIn {
                    id,
                    len,
                    digest,
                    xfer,
                    ..
                } => {
                    fold.live.insert(
                        id,
                        Tracked {
                            size: len,
                            digest,
                            claim: xfer,
                        },
                    );
                    fold.arrived.push(xfer);
                    fold.max_xfer = fold.max_xfer.max(xfer);
                }
                WalRecord::RouteFlip { xfer, .. } => {
                    fold.max_xfer = fold.max_xfer.max(xfer);
                }
            }
        }
    }
    Ok(fold)
}

impl Engine {
    /// Rebuilds a crashed (or cleanly stopped) fleet from the write-ahead
    /// logs and checkpoints under `wal_dir`, returning the recovered
    /// engine — journaling into the same directory — and a report of what
    /// replay found. See the [module docs](crate::recover) for the
    /// algorithm and its guarantees.
    ///
    /// `config.shards` must match the fleet that wrote the logs; `factory`
    /// builds each shard's reallocator like at construction. The engine's
    /// router is a fresh [`TableRouter`] re-derived from physical
    /// ownership (any router the old fleet used is superseded — its
    /// durable assignments live in the checkpoints' pin flags and, more
    /// fundamentally, in where the objects physically are).
    ///
    /// # Errors
    /// [`EngineError::Wal`] when a log or checkpoint cannot be read or a
    /// replayed digest does not match the object's regenerated content;
    /// any barrier error the reseeding quiesce or the closing
    /// byte-verification surfaces.
    pub fn recover<F>(
        config: EngineConfig,
        wal_dir: impl AsRef<Path>,
        factory: F,
    ) -> Result<(Engine, RecoveryReport), EngineError>
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        let dir = wal_dir.as_ref().to_path_buf();
        let mut report = RecoveryReport {
            shards: config.shards,
            ..RecoveryReport::default()
        };
        // One span per recovery stage, recorded standalone (the engine does
        // not exist yet) and installed into the rebuilt fleet's journal so
        // the first metrics scrape shows how recovery spent its time.
        let mut spans = EventJournal::new(512);

        // Phase 1: fold each shard's checkpoint + log suffix — on one
        // thread per shard, since the logs are independent by
        // construction (each shard journals only its own ops; even a
        // migration is two records in two logs). The folds are merged
        // in shard index order, so the owner map, the report, and the
        // duplicate/resurrection ordering are byte-identical to the old
        // sequential fold — `crash_matrix` pins this.
        spans.begin(None, "recover.fold", config.shards as u64);
        let folds: Vec<Result<ShardFold, EngineError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.shards)
                .map(|shard| {
                    let dir = &dir;
                    scope.spawn(move || fold_shard(dir, shard))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("suffix-fold thread panicked"))
                .collect()
        });
        let mut live: Vec<BTreeMap<ObjectId, Tracked>> = Vec::with_capacity(config.shards);
        // Every journaled MigrateOut as (xfer, id, size, source shard).
        let mut outs: Vec<(u64, ObjectId, u64, usize)> = Vec::new();
        // Transfer sequence numbers whose arrival survived in some log.
        let mut arrived: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut max_xfer = 0u64;
        for fold in folds {
            let fold = fold?;
            report.checkpoint_objects += fold.checkpoint_objects;
            report.replayed_groups += fold.replayed_groups;
            report.replayed_records += fold.replayed_records;
            outs.extend(fold.outs);
            arrived.extend(fold.arrived);
            max_xfer = max_xfer.max(fold.max_xfer);
            live.push(fold.live);
        }
        spans.end(None, "recover.fold", report.replayed_records);

        // Phase 2a: duplicates. An id live on two shards means the source
        // log was truncated below its MigrateOut while the target kept the
        // MigrateIn; the later arrival (higher claim) is the durable truth.
        spans.begin(None, "recover.reconcile", 0);
        let mut owner: BTreeMap<ObjectId, (usize, u64, u64)> = BTreeMap::new();
        for (shard, map) in live.into_iter().enumerate() {
            for (id, t) in map {
                // Digests are proven here, once per surviving copy: the
                // content invariant says the bytes must regenerate.
                if t.digest != checksum(&pattern_for(id, t.size)) {
                    return Err(wal_err(format!(
                        "shard {shard}: {id} digest does not match its regenerated \
                         content at size {} — the log is inconsistent",
                        t.size
                    )));
                }
                match owner.get(&id) {
                    Some(&(_, _, claim)) if claim >= t.claim => {
                        report.dropped_duplicates.push(id);
                    }
                    Some(_) => {
                        report.dropped_duplicates.push(id);
                        owner.insert(id, (shard, t.size, t.claim));
                    }
                    None => {
                        owner.insert(id, (shard, t.size, t.claim));
                    }
                }
            }
        }

        // Phase 2b: transfers that died in flight. The source durably gave
        // the object up, no arrival survived anywhere, and the id is live
        // nowhere — resurrect it on its source (content regenerates from
        // the pattern). Latest departure first, so an object migrated
        // twice resurrects at its most recent home.
        outs.sort_by_key(|&(xfer, ..)| std::cmp::Reverse(xfer));
        for (xfer, id, size, shard) in outs {
            if !arrived.contains(&xfer) && !owner.contains_key(&id) {
                owner.insert(id, (shard, size, xfer));
                report.resurrected.push(id);
            }
        }

        report.objects = owner.len() as u64;
        report.volume = owner.values().map(|&(_, size, _)| size).sum();
        spans.end(None, "recover.reconcile", report.objects);

        // Phase 3: routing re-derived from ownership — assign exactly
        // where the fresh rendezvous fallback disagrees.
        spans.begin(None, "recover.routing", 0);
        let mut router = TableRouter::new(config.shards);
        for (&id, &(shard, ..)) in &owner {
            if realloc_common::Router::route(&router, id) != shard {
                realloc_common::Router::assign(&mut router, id, shard);
                report.route_assignments += 1;
            }
        }
        spans.end(None, "recover.routing", report.route_assignments);

        // Phase 4: reseed a fresh fleet through the normal serving path.
        // The derived router lands every insert on its owner, workers
        // journal the reseeding appends (a crash mid-recovery just
        // recovers again), and the closing quiesce checkpoints the rebuilt
        // state and truncates the logs. Ownership is already known, so the
        // inserts are pre-split into per-shard streams and dispatched a
        // batch per shard per round — every worker reseeds in parallel
        // instead of one object at a time through the router.
        spans.begin(None, "recover.reseed", report.objects);
        let mut streams: Vec<Vec<workload_gen::Request>> = vec![Vec::new(); config.shards];
        for (&id, &(shard, size, _)) in &owner {
            streams[shard].push(workload_gen::Request::Insert { id, size });
        }
        let mut engine = Engine::build(config, Box::new(router), factory, Some(dir), 1)?;
        engine.set_xfer_seq(max_xfer + 1);
        engine.drive_streams(streams)?;
        engine.quiesce()?;
        report.substrate = engine.verify_substrate()?;
        spans.end(None, "recover.reseed", report.volume);
        engine.install_events(spans);
        Ok((engine, report))
    }
}
