//! A byte-carrying device: the same rule checking as [`SimStore`], but the
//! cells hold actual data, so corruption — not just rule violations — is
//! detectable end to end.
//!
//! Every object's content is summarized by a FNV-1a checksum registered at
//! allocation. Moves physically copy bytes (memmove semantics in relaxed
//! mode); [`DataStore::verify_object`] recomputes the checksum at the
//! current location, and [`DataStore::crash_and_verify`] checks that every
//! durably mapped object's bytes are intact at the mapped address — the
//! strongest form of the paper's durability argument.
//!
//! [`SimStore`]: crate::SimStore

use std::collections::HashMap;

use realloc_common::{Extent, ObjectId, StorageOp};

use crate::store::{Mode, SimStore, Violation};

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Deterministic content for an object: a byte pattern derived from its id,
/// different for every (id, length) pair.
pub fn pattern_for(id: ObjectId, len: u64) -> Vec<u8> {
    let mut state = id.0.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(len);
    (0..len)
        .map(|_| {
            // xorshift64* — cheap, well-distributed test data.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xff) as u8
        })
        .collect()
}

/// Outcome of a crash with byte-level verification.
#[derive(Debug, Default)]
pub struct DataRecoveryReport {
    /// Objects whose durable bytes verified correctly.
    pub intact: Vec<ObjectId>,
    /// Objects whose durable location no longer holds their bytes.
    pub corrupted: Vec<ObjectId>,
}

impl DataRecoveryReport {
    /// Whether no object was corrupted.
    pub fn is_durable(&self) -> bool {
        self.corrupted.is_empty()
    }
}

/// A [`SimStore`] plus an actual byte array and per-object checksums.
pub struct DataStore {
    rules: SimStore,
    cells: Vec<u8>,
    checksums: HashMap<ObjectId, u64>,
}

impl DataStore {
    /// An empty byte-carrying store in the given mode.
    pub fn new(mode: Mode) -> Self {
        DataStore {
            rules: SimStore::new(mode),
            cells: Vec::new(),
            checksums: HashMap::new(),
        }
    }

    /// The underlying rule-checking store.
    pub fn rules(&self) -> &SimStore {
        &self.rules
    }

    fn ensure_capacity(&mut self, end: u64) {
        if self.cells.len() < end as usize {
            self.cells.resize(end as usize, 0);
        }
    }

    fn write(&mut self, at: Extent, bytes: &[u8]) {
        debug_assert_eq!(at.len as usize, bytes.len());
        self.ensure_capacity(at.end());
        self.cells[at.offset as usize..at.end() as usize].copy_from_slice(bytes);
    }

    fn read(&self, at: Extent) -> &[u8] {
        &self.cells[at.offset as usize..at.end() as usize]
    }

    /// Replays one op: rule checking first, then the physical byte work.
    /// Allocations write the object's deterministic pattern.
    pub fn apply(&mut self, op: &StorageOp) -> Result<(), Violation> {
        self.rules.apply(op)?;
        match *op {
            StorageOp::Allocate { id, to } => {
                let bytes = pattern_for(id, to.len);
                self.checksums.insert(id, fnv1a(&bytes));
                self.write(to, &bytes);
            }
            StorageOp::Move { from, to, .. } => {
                // memmove semantics: correct even for self-overlapping
                // relaxed-mode moves.
                self.ensure_capacity(to.end().max(from.end()));
                self.cells.copy_within(
                    from.offset as usize..from.end() as usize,
                    to.offset as usize,
                );
            }
            StorageOp::Free { .. } | StorageOp::CheckpointBarrier => {}
        }
        Ok(())
    }

    /// Replays a whole op stream, stopping at the first violation.
    pub fn apply_all(&mut self, ops: &[StorageOp]) -> Result<(), Violation> {
        ops.iter().try_for_each(|op| self.apply(op))
    }

    /// Recomputes the checksum of a live object at its current location.
    pub fn verify_object(&self, id: ObjectId) -> Result<(), String> {
        let ext = self
            .rules
            .extent_of(id)
            .ok_or_else(|| format!("{id} is not live"))?;
        let expected = self
            .checksums
            .get(&id)
            .ok_or_else(|| format!("{id} has no checksum"))?;
        let actual = fnv1a(self.read(ext));
        if actual == *expected {
            Ok(())
        } else {
            Err(format!(
                "{id} corrupted at {ext}: checksum {actual:#x} != {expected:#x}"
            ))
        }
    }

    /// Verifies every live object's bytes.
    pub fn verify_all(&self) -> Result<(), String> {
        for (ext, id) in self.rules.live_spans() {
            let _ = ext;
            self.verify_object(id)?;
        }
        Ok(())
    }

    /// Simulates a crash: for every object in the durable translation map,
    /// recompute the checksum of the bytes at the *mapped* address. This is
    /// stronger than [`SimStore::crash_and_recover`]: it detects a stale map
    /// entry whose cells were physically overwritten, not only rule-level
    /// violations.
    pub fn crash_and_verify(&self) -> DataRecoveryReport {
        let mut report = DataRecoveryReport::default();
        for (&id, &ext) in self.rules.durable_btl() {
            let intact = self.cells.len() >= ext.end() as usize
                && self.checksums.get(&id) == Some(&fnv1a(self.read(ext)));
            if intact {
                report.intact.push(id);
            } else {
                report.corrupted.push(id);
            }
        }
        report.intact.sort_unstable();
        report.corrupted.sort_unstable();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }
    fn ext(o: u64, l: u64) -> Extent {
        Extent::new(o, l)
    }

    #[test]
    fn pattern_is_deterministic_and_id_specific() {
        assert_eq!(pattern_for(id(1), 64), pattern_for(id(1), 64));
        assert_ne!(pattern_for(id(1), 64), pattern_for(id(2), 64));
        assert_eq!(pattern_for(id(1), 64).len(), 64);
    }

    #[test]
    fn bytes_survive_moves() {
        let mut store = DataStore::new(Mode::Strict);
        store
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(0, 100),
            })
            .unwrap();
        store.verify_object(id(1)).unwrap();
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(0, 100),
                to: ext(200, 100),
            })
            .unwrap();
        store.verify_object(id(1)).unwrap();
    }

    #[test]
    fn self_overlapping_relaxed_move_is_memmove_correct() {
        let mut store = DataStore::new(Mode::Relaxed);
        store
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(50, 100),
            })
            .unwrap();
        // Shift left by less than the length: memcpy would corrupt this.
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(50, 100),
                to: ext(10, 100),
            })
            .unwrap();
        store.verify_object(id(1)).unwrap();
        // And right again.
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(10, 100),
                to: ext(60, 100),
            })
            .unwrap();
        store.verify_object(id(1)).unwrap();
    }

    #[test]
    fn crash_verification_reads_durable_copies() {
        let mut store = DataStore::new(Mode::Strict);
        store
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(0, 40),
            })
            .unwrap();
        store.apply(&StorageOp::CheckpointBarrier).unwrap();
        // Move after the checkpoint: durable map still points at [0, 40).
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(0, 40),
                to: ext(100, 40),
            })
            .unwrap();
        let report = store.crash_and_verify();
        assert!(report.is_durable(), "old copy must still hold the bytes");
    }

    #[test]
    fn corruption_detected_if_rules_bypassed() {
        // Relaxed mode allows immediate reuse; the durable copy gets
        // physically overwritten and the byte-level check must catch it.
        let mut store = DataStore::new(Mode::Relaxed);
        store
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(0, 40),
            })
            .unwrap();
        store.apply(&StorageOp::CheckpointBarrier).unwrap();
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(0, 40),
                to: ext(100, 40),
            })
            .unwrap();
        store
            .apply(&StorageOp::Allocate {
                id: id(2),
                to: ext(0, 40),
            })
            .unwrap();
        let report = store.crash_and_verify();
        assert_eq!(report.corrupted, vec![id(1)]);
    }

    #[test]
    fn verify_all_covers_every_live_object() {
        let mut store = DataStore::new(Mode::Strict);
        for n in 0..20 {
            store
                .apply(&StorageOp::Allocate {
                    id: id(n),
                    to: ext(n * 50, 30 + n),
                })
                .unwrap();
        }
        store.verify_all().unwrap();
    }
}
