//! A byte-carrying device: the same rule checking as [`SimStore`], but the
//! cells hold actual data, so corruption — not just rule violations — is
//! detectable end to end.
//!
//! Every object's content is summarized by a FNV-1a checksum registered at
//! allocation. Moves physically copy bytes (memmove semantics in relaxed
//! mode); [`DataStore::verify_object`] recomputes the checksum at the
//! current location, and [`DataStore::crash_and_verify`] checks that every
//! durably mapped object's bytes are intact at the mapped address — the
//! strongest form of the paper's durability argument.
//!
//! [`SimStore`]: crate::SimStore

use std::collections::HashMap;

use realloc_common::{Extent, ObjectId, StorageOp};

use crate::store::{AddressWindow, Mode, SimStore, Violation};

/// FNV-1a over a byte slice — the workspace's object-content checksum.
///
/// This is what [`DataStore`] registers at allocation, what
/// [`DataStore::verify_object`] recomputes, and what a cross-shard transfer
/// ships alongside its payload so the receiver can prove the bytes arrived
/// intact (see [`DataStore::adopt`]).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The verification value for a cross-address-space transfer expected to
/// be `expected_len` cells: the content [`checksum`] with the payload
/// length folded against the expectation, so a truncated payload cannot
/// pass by checksumming its own prefix. Equal to `checksum(bytes)` exactly
/// when `bytes.len() == expected_len` — a sender therefore ships the plain
/// checksum, and every receiver-side check ([`DataStore::adopt`], and any
/// pre-insertion check a serving layer runs) goes through this one
/// function so the two can never disagree.
pub fn transfer_checksum(bytes: &[u8], expected_len: u64) -> u64 {
    checksum(bytes) ^ (bytes.len() as u64 ^ expected_len)
}

/// Deterministic content for an object: a byte pattern derived from its id,
/// different for every (id, length) pair.
pub fn pattern_for(id: ObjectId, len: u64) -> Vec<u8> {
    let mut state = id.0.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(len);
    (0..len)
        .map(|_| {
            // xorshift64* — cheap, well-distributed test data.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xff) as u8
        })
        .collect()
}

/// Outcome of a crash with byte-level verification.
#[derive(Debug, Default)]
pub struct DataRecoveryReport {
    /// Objects whose durable bytes verified correctly.
    pub intact: Vec<ObjectId>,
    /// Objects whose durable location no longer holds their bytes.
    pub corrupted: Vec<ObjectId>,
}

impl DataRecoveryReport {
    /// Whether no object was corrupted.
    pub fn is_durable(&self) -> bool {
        self.corrupted.is_empty()
    }
}

/// A [`SimStore`] plus an actual byte array and per-object checksums.
///
/// # Example: a round-trip with checksum verification
///
/// Allocate an object, move it, and prove the bytes survived both hops:
///
/// ```
/// use realloc_common::{Extent, ObjectId, StorageOp};
/// use storage_sim::{checksum, pattern_for, DataStore, Mode};
///
/// let mut store = DataStore::new(Mode::Strict);
/// let id = ObjectId(7);
/// store.apply(&StorageOp::Allocate { id, to: Extent::new(0, 64) }).unwrap();
///
/// // The cells now hold the object's deterministic pattern bytes.
/// let expected = checksum(&pattern_for(id, 64));
/// assert_eq!(store.checksum_of(id), Some(expected));
/// store.verify_object(id).unwrap();
///
/// // A (nonoverlapping) move physically copies the bytes; the checksum
/// // still verifies at the new address.
/// store.apply(&StorageOp::Move {
///     id,
///     from: Extent::new(0, 64),
///     to: Extent::new(100, 64),
/// }).unwrap();
/// assert_eq!(store.bytes_of(id).map(checksum), Some(expected));
/// store.verify_all().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct DataStore {
    rules: SimStore,
    cells: Vec<u8>,
    checksums: HashMap<ObjectId, u64>,
}

impl DataStore {
    /// An empty byte-carrying store in the given mode.
    pub fn new(mode: Mode) -> Self {
        DataStore {
            rules: SimStore::new(mode),
            cells: Vec::new(),
            checksums: HashMap::new(),
        }
    }

    /// An empty byte-carrying store owning the address window `window`
    /// (see [`SimStore::windowed`]): writes reaching `window.span` are
    /// rejected, making per-shard stores provably disjoint slices of one
    /// global device.
    pub fn windowed(mode: Mode, window: AddressWindow) -> Self {
        DataStore {
            rules: SimStore::windowed(mode, window),
            cells: Vec::new(),
            checksums: HashMap::new(),
        }
    }

    /// The underlying rule-checking store.
    pub fn rules(&self) -> &SimStore {
        &self.rules
    }

    /// The address window this store owns, if it is windowed.
    pub fn window(&self) -> Option<AddressWindow> {
        self.rules.window()
    }

    /// The bytes of a live object at its current placement.
    pub fn bytes_of(&self, id: ObjectId) -> Option<&[u8]> {
        self.rules.extent_of(id).map(|e| self.read(e))
    }

    /// The checksum registered for a live object (what its bytes *should*
    /// hash to; [`verify_object`](Self::verify_object) compares against the
    /// cells).
    pub fn checksum_of(&self, id: ObjectId) -> Option<u64> {
        self.rules
            .extent_of(id)
            .and_then(|_| self.checksums.get(&id).copied())
    }

    fn ensure_capacity(&mut self, end: u64) {
        if self.cells.len() < end as usize {
            self.cells.resize(end as usize, 0);
        }
    }

    fn write(&mut self, at: Extent, bytes: &[u8]) {
        debug_assert_eq!(at.len as usize, bytes.len());
        self.ensure_capacity(at.end());
        self.cells[at.offset as usize..at.end() as usize].copy_from_slice(bytes);
    }

    fn read(&self, at: Extent) -> &[u8] {
        &self.cells[at.offset as usize..at.end() as usize]
    }

    /// Replays one op: rule checking first, then the physical byte work.
    /// Allocations write the object's deterministic pattern.
    pub fn apply(&mut self, op: &StorageOp) -> Result<(), Violation> {
        self.rules.apply(op)?;
        match *op {
            StorageOp::Allocate { id, to } => {
                let bytes = pattern_for(id, to.len);
                self.checksums.insert(id, checksum(&bytes));
                self.write(to, &bytes);
            }
            StorageOp::Move { from, to, .. } => {
                // memmove semantics: correct even for self-overlapping
                // relaxed-mode moves.
                self.ensure_capacity(to.end().max(from.end()));
                self.cells.copy_within(
                    from.offset as usize..from.end() as usize,
                    to.offset as usize,
                );
            }
            StorageOp::Free { .. } | StorageOp::CheckpointBarrier => {}
        }
        Ok(())
    }

    /// Replays a whole op stream, stopping at the first violation.
    pub fn apply_all(&mut self, ops: &[StorageOp]) -> Result<(), Violation> {
        ops.iter().try_for_each(|op| self.apply(op))
    }

    /// The receiving half of a cross-address-space transfer: place `id` at
    /// `to` holding `bytes` shipped from another store, after proving they
    /// arrived intact against the `expected` checksum the sender computed.
    ///
    /// A corrupted or truncated payload fails with
    /// [`Violation::DamagedTransfer`] *before* anything is written — the
    /// store is untouched, so the caller can refuse the transfer and leave
    /// the object with its sender. On success the transferred bytes (not a
    /// freshly generated pattern) are what lands in the cells, and
    /// `expected` is what later verification checks against — the transfer
    /// is byte-faithful end to end.
    pub fn adopt(
        &mut self,
        id: ObjectId,
        to: Extent,
        bytes: &[u8],
        expected: u64,
    ) -> Result<(), Violation> {
        let actual = transfer_checksum(bytes, to.len);
        if actual != expected {
            return Err(Violation::DamagedTransfer {
                id,
                expected,
                actual,
            });
        }
        self.rules.apply(&StorageOp::Allocate { id, to })?;
        self.checksums.insert(id, expected);
        self.write(to, bytes);
        Ok(())
    }

    /// Recomputes the checksum of a live object at its current location.
    pub fn verify_object(&self, id: ObjectId) -> Result<(), String> {
        let ext = self
            .rules
            .extent_of(id)
            .ok_or_else(|| format!("{id} is not live"))?;
        let expected = self
            .checksums
            .get(&id)
            .ok_or_else(|| format!("{id} has no checksum"))?;
        let actual = checksum(self.read(ext));
        if actual == *expected {
            Ok(())
        } else {
            Err(format!(
                "{id} corrupted at {ext}: checksum {actual:#x} != {expected:#x}"
            ))
        }
    }

    /// Verifies every live object's bytes.
    pub fn verify_all(&self) -> Result<(), String> {
        for (ext, id) in self.rules.live_spans() {
            let _ = ext;
            self.verify_object(id)?;
        }
        Ok(())
    }

    /// Fault injection (testing): flips one byte of a live object's cells
    /// *without* touching its registered checksum, so the next
    /// verification of the object fails. Returns whether the object was
    /// live (nothing is corrupted otherwise). This models silent media
    /// corruption — the rule-level state stays consistent; only the bytes
    /// lie.
    pub fn corrupt_object(&mut self, id: ObjectId) -> bool {
        match self.rules.extent_of(id) {
            Some(ext) if ext.len > 0 => {
                self.cells[ext.offset as usize] ^= 0x01;
                true
            }
            _ => false,
        }
    }

    /// Simulates a crash: for every object in the durable translation map,
    /// recompute the checksum of the bytes at the *mapped* address. This is
    /// stronger than [`SimStore::crash_and_recover`]: it detects a stale map
    /// entry whose cells were physically overwritten, not only rule-level
    /// violations.
    pub fn crash_and_verify(&self) -> DataRecoveryReport {
        let mut report = DataRecoveryReport::default();
        for (&id, &ext) in self.rules.durable_btl() {
            let intact = self.cells.len() >= ext.end() as usize
                && self.checksums.get(&id) == Some(&checksum(self.read(ext)));
            if intact {
                report.intact.push(id);
            } else {
                report.corrupted.push(id);
            }
        }
        report.intact.sort_unstable();
        report.corrupted.sort_unstable();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }
    fn ext(o: u64, l: u64) -> Extent {
        Extent::new(o, l)
    }

    #[test]
    fn pattern_is_deterministic_and_id_specific() {
        assert_eq!(pattern_for(id(1), 64), pattern_for(id(1), 64));
        assert_ne!(pattern_for(id(1), 64), pattern_for(id(2), 64));
        assert_eq!(pattern_for(id(1), 64).len(), 64);
    }

    #[test]
    fn bytes_survive_moves() {
        let mut store = DataStore::new(Mode::Strict);
        store
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(0, 100),
            })
            .unwrap();
        store.verify_object(id(1)).unwrap();
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(0, 100),
                to: ext(200, 100),
            })
            .unwrap();
        store.verify_object(id(1)).unwrap();
    }

    #[test]
    fn self_overlapping_relaxed_move_is_memmove_correct() {
        let mut store = DataStore::new(Mode::Relaxed);
        store
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(50, 100),
            })
            .unwrap();
        // Shift left by less than the length: memcpy would corrupt this.
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(50, 100),
                to: ext(10, 100),
            })
            .unwrap();
        store.verify_object(id(1)).unwrap();
        // And right again.
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(10, 100),
                to: ext(60, 100),
            })
            .unwrap();
        store.verify_object(id(1)).unwrap();
    }

    #[test]
    fn crash_verification_reads_durable_copies() {
        let mut store = DataStore::new(Mode::Strict);
        store
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(0, 40),
            })
            .unwrap();
        store.apply(&StorageOp::CheckpointBarrier).unwrap();
        // Move after the checkpoint: durable map still points at [0, 40).
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(0, 40),
                to: ext(100, 40),
            })
            .unwrap();
        let report = store.crash_and_verify();
        assert!(report.is_durable(), "old copy must still hold the bytes");
    }

    #[test]
    fn corruption_detected_if_rules_bypassed() {
        // Relaxed mode allows immediate reuse; the durable copy gets
        // physically overwritten and the byte-level check must catch it.
        let mut store = DataStore::new(Mode::Relaxed);
        store
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(0, 40),
            })
            .unwrap();
        store.apply(&StorageOp::CheckpointBarrier).unwrap();
        store
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(0, 40),
                to: ext(100, 40),
            })
            .unwrap();
        store
            .apply(&StorageOp::Allocate {
                id: id(2),
                to: ext(0, 40),
            })
            .unwrap();
        let report = store.crash_and_verify();
        assert_eq!(report.corrupted, vec![id(1)]);
    }

    #[test]
    fn adopt_is_byte_faithful_and_rejects_damage() {
        // Source store: object 1's pattern bytes at some address.
        let mut source = DataStore::windowed(Mode::Relaxed, AddressWindow::for_shard(0, 1 << 16));
        source
            .apply(&StorageOp::Allocate {
                id: id(1),
                to: ext(40, 64),
            })
            .unwrap();
        let payload = source.bytes_of(id(1)).unwrap().to_vec();
        let sum = source.checksum_of(id(1)).unwrap();
        assert_eq!(sum, checksum(&payload));

        // Target store (a different window): adoption verifies and lands
        // the *transferred* bytes.
        let mut target = DataStore::windowed(Mode::Relaxed, AddressWindow::for_shard(1, 1 << 16));
        target.adopt(id(1), ext(0, 64), &payload, sum).unwrap();
        assert_eq!(target.bytes_of(id(1)), Some(&payload[..]));
        target.verify_object(id(1)).unwrap();

        // One flipped byte: refused before anything is written.
        let mut damaged = payload.clone();
        damaged[13] ^= 0x40;
        let mut t2 = DataStore::new(Mode::Relaxed);
        let err = t2.adopt(id(2), ext(0, 64), &damaged, sum).unwrap_err();
        assert!(matches!(err, Violation::DamagedTransfer { .. }));
        assert_eq!(t2.rules().live_count(), 0, "failed adoption wrote state");

        // A truncated payload is damage too, even with its own checksum.
        let truncated = &payload[..32];
        let err = t2
            .adopt(id(2), ext(0, 64), truncated, checksum(truncated))
            .unwrap_err();
        assert!(matches!(err, Violation::DamagedTransfer { .. }));
    }

    #[test]
    fn verify_all_covers_every_live_object() {
        let mut store = DataStore::new(Mode::Strict);
        for n in 0..20 {
            store
                .apply(&StorageOp::Allocate {
                    id: id(n),
                    to: ext(n * 50, 30 + n),
                })
                .unwrap();
        }
        store.verify_all().unwrap();
    }
}
