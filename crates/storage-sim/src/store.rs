//! The simulated store: extent occupancy, checkpoint epochs, durable
//! translation map, crash recovery.

use std::collections::{BTreeMap, HashMap};

use realloc_common::{Extent, ObjectId, StorageOp};

/// A shard's slice of a global device: the half-open cell range
/// `[base, base + span)`.
///
/// A windowed store speaks *window-relative* addresses — the reallocator it
/// replays knows nothing about the window — and enforces that no op writes
/// at or past `span`. The `base` is what makes per-shard address spaces
/// globally disjoint: shard *i*'s window-relative cell `a` is global cell
/// `base + a`, so a cross-shard migration is a genuine cross-address-space
/// copy even when both shards replay into their own store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressWindow {
    /// First global cell owned by this window.
    pub base: u64,
    /// Cells in the window; window-relative addresses must stay below it.
    pub span: u64,
}

impl AddressWindow {
    /// The window `[base, base + span)`.
    ///
    /// # Panics
    /// Panics if `span` is zero or `base + span` overflows.
    pub fn new(base: u64, span: u64) -> Self {
        assert!(span > 0, "an address window must span at least one cell");
        assert!(
            base.checked_add(span).is_some(),
            "window [{base}, {base} + {span}) overflows the address space"
        );
        AddressWindow { base, span }
    }

    /// The `i`-th of a sequence of disjoint equal-span windows — the layout
    /// a sharded engine uses (shard `i` owns `[i·span, (i+1)·span)`).
    pub fn for_shard(shard: usize, span: u64) -> Self {
        AddressWindow::new((shard as u64).saturating_mul(span), span)
    }

    /// Whether a window-relative extent fits inside the window.
    pub fn admits(&self, extent: &Extent) -> bool {
        extent.end() <= self.span
    }

    /// Translates a window-relative extent to global device addresses.
    pub fn global(&self, extent: &Extent) -> Extent {
        Extent::new(self.base + extent.offset, extent.len)
    }
}

impl std::fmt::Display for AddressWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.base, self.base + self.span)
    }
}

/// How strictly the substrate polices writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `memmove` semantics: a move may overlap its own old location, and
    /// freed space is reusable immediately. Clobbering *other* objects is
    /// still a violation. Matches the Section 2 (in-memory) setting.
    Relaxed,
    /// Full database rules: moves must be nonoverlapping, and space freed
    /// after the last checkpoint may not be rewritten until the next one
    /// (Section 3.1). Matches the checkpointed/deamortized algorithms.
    Strict,
}

/// State of one span of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanState {
    /// Currently holds a live object.
    Live(ObjectId),
    /// Freed at `epoch`, still holding the last durable copy written by
    /// `prior` (or just unreusable free space). Cleared by a checkpoint.
    Ghost {
        /// The object whose bytes still occupy the span.
        prior: ObjectId,
        /// Checkpoint epoch in which the span was freed.
        epoch: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Span {
    len: u64,
    state: SpanState,
}

/// A rule violation detected while replaying an op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Write target intersects a live object other than the one moving.
    TargetOccupied {
        /// The writing object.
        id: ObjectId,
        /// The attempted write location.
        target: Extent,
        /// The live object that would be clobbered.
        hit: ObjectId,
    },
    /// Write target intersects space freed after the last checkpoint.
    FreedSpaceRule {
        /// The writing object.
        id: ObjectId,
        /// The attempted write location.
        target: Extent,
        /// Epoch in which the space was freed.
        freed_epoch: u64,
    },
    /// A move's target overlaps its own source (strict mode only).
    OverlappingMove {
        /// The moving object.
        id: ObjectId,
        /// Its current location.
        from: Extent,
        /// The overlapping target.
        to: Extent,
    },
    /// Move/free source does not match the object's actual placement.
    SourceMismatch {
        /// The object named by the op.
        id: ObjectId,
        /// The location the op claimed.
        claimed: Extent,
        /// Where the store actually has it (if live).
        actual: Option<Extent>,
    },
    /// Allocate for an id that is already live.
    DuplicateObject {
        /// The reused id.
        id: ObjectId,
    },
    /// A write landed at or past the end of the store's address window.
    OutOfWindow {
        /// The writing object.
        id: ObjectId,
        /// The attempted (window-relative) write location.
        target: Extent,
        /// Cells the window spans.
        span: u64,
    },
    /// An adopted transfer's bytes did not match the checksum they shipped
    /// with — the payload was corrupted or truncated in flight.
    DamagedTransfer {
        /// The arriving object.
        id: ObjectId,
        /// Checksum the sender computed over the released bytes.
        expected: u64,
        /// Checksum of the bytes that actually arrived.
        actual: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::TargetOccupied { id, target, hit } => {
                write!(f, "{id}: write to {target} clobbers live {hit}")
            }
            Violation::FreedSpaceRule { id, target, freed_epoch } => write!(
                f,
                "{id}: write to {target} reuses space freed at epoch {freed_epoch} before a checkpoint"
            ),
            Violation::OverlappingMove { id, from, to } => {
                write!(f, "{id}: move {from} -> {to} overlaps itself")
            }
            Violation::SourceMismatch { id, claimed, actual } => {
                write!(f, "{id}: source {claimed} but object is at {actual:?}")
            }
            Violation::DuplicateObject { id } => write!(f, "{id}: allocated twice"),
            Violation::OutOfWindow { id, target, span } => {
                write!(f, "{id}: write to {target} exceeds the {span}-cell window")
            }
            Violation::DamagedTransfer {
                id,
                expected,
                actual,
            } => write!(
                f,
                "{id}: transfer arrived damaged (checksum {actual:#x} != {expected:#x})"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// Outcome of a simulated crash + recovery.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Objects whose durable mapping still points at an intact copy.
    pub recovered: Vec<ObjectId>,
    /// Objects whose durable copy was destroyed — must stay empty if the
    /// replayed algorithm respected the rules.
    pub lost: Vec<ObjectId>,
}

impl RecoveryReport {
    /// Whether every durably mapped object survived.
    pub fn is_durable(&self) -> bool {
        self.lost.is_empty()
    }
}

/// The simulated storage device + block translation layer.
///
/// Spans (live objects and strict-mode ghosts) are kept in an offset-keyed
/// map; because spans are pairwise disjoint, their `end`s increase with
/// their offsets, so intersection queries need only inspect the predecessor
/// of the query's end.
#[derive(Debug, Clone)]
pub struct SimStore {
    mode: Mode,
    /// When present, every write must stay below `window.span` (addresses
    /// are window-relative; see [`AddressWindow`]).
    window: Option<AddressWindow>,
    spans: BTreeMap<u64, Span>,
    live: HashMap<ObjectId, Extent>,
    /// The durable name -> extent map as of the last checkpoint.
    durable_btl: HashMap<ObjectId, Extent>,
    epoch: u64,
    checkpoints: u64,
    peak_end: u64,
    ops_applied: u64,
}

impl SimStore {
    /// An empty store enforcing the given mode's rules over an unbounded
    /// address space.
    pub fn new(mode: Mode) -> Self {
        SimStore {
            mode,
            window: None,
            spans: BTreeMap::new(),
            live: HashMap::new(),
            durable_btl: HashMap::new(),
            epoch: 0,
            checkpoints: 0,
            peak_end: 0,
            ops_applied: 0,
        }
    }

    /// An empty store owning the address window `window`: op addresses are
    /// window-relative, and any write reaching `window.span` or beyond is a
    /// [`Violation::OutOfWindow`]. This is how a sharded engine gives each
    /// shard a disjoint slice of one global device.
    pub fn windowed(mode: Mode, window: AddressWindow) -> Self {
        let mut store = SimStore::new(mode);
        store.window = Some(window);
        store
    }

    /// The rule mode this store enforces.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The address window this store owns, if it is windowed.
    pub fn window(&self) -> Option<AddressWindow> {
        self.window
    }

    /// Current checkpoint epoch (starts at 0, bumped by each checkpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of checkpoints performed.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Ops replayed so far.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Live placement of `id`, if any.
    pub fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.live.get(&id).copied()
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total volume of live objects.
    pub fn live_volume(&self) -> u64 {
        self.live.values().map(|e| e.len).sum()
    }

    /// One past the largest cell holding a live object.
    pub fn footprint(&self) -> u64 {
        self.live.values().map(|e| e.end()).max().unwrap_or(0)
    }

    /// One past the largest cell ever written (ghost copies included).
    pub fn peak_physical_end(&self) -> u64 {
        self.peak_end
    }

    /// First span intersecting `target`, if any.
    fn intersecting_span(&self, target: &Extent) -> Option<(u64, Span)> {
        // Spans are disjoint, so ends increase with offsets: the span with
        // the largest offset below target.end() is the only candidate.
        let (&off, span) = self.spans.range(..target.end()).next_back()?;
        let ext = Extent::new(off, span.len);
        if ext.end() > target.offset {
            Some((off, *span))
        } else {
            None
        }
    }

    /// Rejects writes escaping the address window, if one is set.
    fn check_window(&self, id: ObjectId, target: &Extent) -> Result<(), Violation> {
        match self.window {
            Some(w) if !w.admits(target) => Err(Violation::OutOfWindow {
                id,
                target: *target,
                span: w.span,
            }),
            _ => Ok(()),
        }
    }

    /// Validates that `target` is writable for `id`; `ignore_self` lets a
    /// relaxed-mode move overlap its own (already removed) source.
    fn check_writable(&self, id: ObjectId, target: &Extent) -> Result<(), Violation> {
        if let Some((off, span)) = self.intersecting_span(target) {
            match span.state {
                SpanState::Live(hit) => {
                    return Err(Violation::TargetOccupied {
                        id,
                        target: *target,
                        hit,
                    });
                }
                SpanState::Ghost { epoch, .. } => {
                    // Only present in strict mode.
                    debug_assert_eq!(self.mode, Mode::Strict);
                    let _ = off;
                    return Err(Violation::FreedSpaceRule {
                        id,
                        target: *target,
                        freed_epoch: epoch,
                    });
                }
            }
        }
        Ok(())
    }

    fn insert_span(&mut self, at: Extent, state: SpanState) {
        self.spans.insert(at.offset, Span { len: at.len, state });
        self.peak_end = self.peak_end.max(at.end());
    }

    /// Replay one op against the store.
    pub fn apply(&mut self, op: &StorageOp) -> Result<(), Violation> {
        self.ops_applied += 1;
        match *op {
            StorageOp::Allocate { id, to } => {
                if self.live.contains_key(&id) {
                    return Err(Violation::DuplicateObject { id });
                }
                self.check_window(id, &to)?;
                self.check_writable(id, &to)?;
                self.insert_span(to, SpanState::Live(id));
                self.live.insert(id, to);
                Ok(())
            }
            StorageOp::Move { id, from, to } => {
                let actual = self.live.get(&id).copied();
                if actual != Some(from) {
                    return Err(Violation::SourceMismatch {
                        id,
                        claimed: from,
                        actual,
                    });
                }
                self.check_window(id, &to)?;
                if self.mode == Mode::Strict && from.overlaps(&to) {
                    return Err(Violation::OverlappingMove { id, from, to });
                }
                // Remove the source span first so a relaxed-mode
                // self-overlapping move does not trip the occupancy check.
                let removed = self.spans.remove(&from.offset);
                debug_assert!(
                    matches!(removed, Some(Span { state: SpanState::Live(i), .. }) if i == id)
                );
                if let Err(v) = self.check_writable(id, &to) {
                    // Restore state before reporting, so callers can inspect.
                    self.insert_span(from, SpanState::Live(id));
                    return Err(v);
                }
                if self.mode == Mode::Strict {
                    // The old copy must survive until the next checkpoint.
                    self.insert_span(
                        from,
                        SpanState::Ghost {
                            prior: id,
                            epoch: self.epoch,
                        },
                    );
                }
                self.insert_span(to, SpanState::Live(id));
                self.live.insert(id, to);
                Ok(())
            }
            StorageOp::Free { id, at } => {
                let actual = self.live.get(&id).copied();
                if actual != Some(at) {
                    return Err(Violation::SourceMismatch {
                        id,
                        claimed: at,
                        actual,
                    });
                }
                self.spans.remove(&at.offset);
                if self.mode == Mode::Strict {
                    self.insert_span(
                        at,
                        SpanState::Ghost {
                            prior: id,
                            epoch: self.epoch,
                        },
                    );
                }
                self.live.remove(&id);
                Ok(())
            }
            StorageOp::CheckpointBarrier => {
                self.checkpoint();
                Ok(())
            }
        }
    }

    /// Replay a whole op stream, stopping at the first violation.
    pub fn apply_all(&mut self, ops: &[StorageOp]) -> Result<(), Violation> {
        ops.iter().try_for_each(|op| self.apply(op))
    }

    /// Perform a checkpoint: the translation map becomes durable and all
    /// ghost spans become ordinary reusable free space.
    pub fn checkpoint(&mut self) {
        self.durable_btl = self.live.clone();
        self.spans
            .retain(|_, s| matches!(s.state, SpanState::Live(_)));
        self.epoch += 1;
        self.checkpoints += 1;
    }

    /// The durable translation map (as of the last checkpoint).
    pub fn durable_btl(&self) -> &HashMap<ObjectId, Extent> {
        &self.durable_btl
    }

    /// Simulate a crash right now and recover from the last checkpoint.
    ///
    /// Every object in the durable map must still have an intact copy at
    /// its mapped extent: either it never moved (still live there) or the
    /// extent is a ghost preserved by the freed-space rule. If the replayed
    /// algorithm broke the rules, objects land in `lost`.
    pub fn crash_and_recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        for (&id, &ext) in &self.durable_btl {
            let intact = match self.spans.get(&ext.offset) {
                Some(span) if span.len == ext.len => match span.state {
                    SpanState::Live(cur) => cur == id,
                    SpanState::Ghost { prior, .. } => prior == id,
                },
                _ => false,
            };
            if intact {
                report.recovered.push(id);
            } else {
                report.lost.push(id);
            }
        }
        report.recovered.sort_unstable();
        report.lost.sort_unstable();
        report
    }

    /// Cross-checks the store's live placements against a reallocator's
    /// view; returns a description of the first divergence.
    pub fn verify_matches(
        &self,
        extent_of: impl Fn(ObjectId) -> Option<Extent>,
    ) -> Result<(), String> {
        for (&id, &ext) in &self.live {
            match extent_of(id) {
                Some(e) if e == ext => {}
                other => {
                    return Err(format!("{id}: store has {ext}, reallocator has {other:?}"));
                }
            }
        }
        Ok(())
    }

    /// All live spans in address order (for rendering and tests).
    pub fn live_spans(&self) -> Vec<(Extent, ObjectId)> {
        self.spans
            .iter()
            .filter_map(|(&off, span)| match span.state {
                SpanState::Live(id) => Some((Extent::new(off, span.len), id)),
                SpanState::Ghost { .. } => None,
            })
            .collect()
    }

    /// All ghost spans in address order.
    pub fn ghost_spans(&self) -> Vec<(Extent, ObjectId, u64)> {
        self.spans
            .iter()
            .filter_map(|(&off, span)| match span.state {
                SpanState::Ghost { prior, epoch } => {
                    Some((Extent::new(off, span.len), prior, epoch))
                }
                SpanState::Live(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(o: u64, l: u64) -> Extent {
        Extent::new(o, l)
    }
    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    fn alloc(n: u64, o: u64, l: u64) -> StorageOp {
        StorageOp::Allocate {
            id: id(n),
            to: ext(o, l),
        }
    }

    #[test]
    fn allocate_and_lookup() {
        let mut s = SimStore::new(Mode::Strict);
        s.apply(&alloc(1, 0, 10)).unwrap();
        s.apply(&alloc(2, 10, 5)).unwrap();
        assert_eq!(s.extent_of(id(1)), Some(ext(0, 10)));
        assert_eq!(s.live_volume(), 15);
        assert_eq!(s.footprint(), 15);
    }

    #[test]
    fn double_allocate_rejected() {
        let mut s = SimStore::new(Mode::Strict);
        s.apply(&alloc(1, 0, 10)).unwrap();
        assert_eq!(
            s.apply(&alloc(1, 20, 10)),
            Err(Violation::DuplicateObject { id: id(1) })
        );
    }

    #[test]
    fn clobbering_live_object_rejected_in_both_modes() {
        for mode in [Mode::Relaxed, Mode::Strict] {
            let mut s = SimStore::new(mode);
            s.apply(&alloc(1, 0, 10)).unwrap();
            let err = s.apply(&alloc(2, 5, 10)).unwrap_err();
            assert!(matches!(err, Violation::TargetOccupied { hit, .. } if hit == id(1)));
        }
    }

    #[test]
    fn self_overlapping_move_allowed_relaxed_rejected_strict() {
        let mv = StorageOp::Move {
            id: id(1),
            from: ext(10, 10),
            to: ext(5, 10),
        };

        let mut relaxed = SimStore::new(Mode::Relaxed);
        relaxed.apply(&alloc(1, 10, 10)).unwrap();
        relaxed.apply(&mv).unwrap();
        assert_eq!(relaxed.extent_of(id(1)), Some(ext(5, 10)));

        let mut strict = SimStore::new(Mode::Strict);
        strict.apply(&alloc(1, 10, 10)).unwrap();
        let err = strict.apply(&mv).unwrap_err();
        assert!(matches!(err, Violation::OverlappingMove { .. }));
        // State unchanged after the rejected move.
        assert_eq!(strict.extent_of(id(1)), Some(ext(10, 10)));
    }

    #[test]
    fn freed_space_rule_enforced_until_checkpoint() {
        let mut s = SimStore::new(Mode::Strict);
        s.apply(&alloc(1, 0, 10)).unwrap();
        s.apply(&StorageOp::Free {
            id: id(1),
            at: ext(0, 10),
        })
        .unwrap();
        // Reuse before checkpoint: violation.
        let err = s.apply(&alloc(2, 0, 10)).unwrap_err();
        assert!(matches!(err, Violation::FreedSpaceRule { .. }));
        // After a checkpoint the space is reusable.
        s.apply(&StorageOp::CheckpointBarrier).unwrap();
        s.apply(&alloc(2, 0, 10)).unwrap();
        assert_eq!(s.extent_of(id(2)), Some(ext(0, 10)));
    }

    #[test]
    fn relaxed_mode_reuses_freed_space_immediately() {
        let mut s = SimStore::new(Mode::Relaxed);
        s.apply(&alloc(1, 0, 10)).unwrap();
        s.apply(&StorageOp::Free {
            id: id(1),
            at: ext(0, 10),
        })
        .unwrap();
        s.apply(&alloc(2, 0, 10)).unwrap();
    }

    #[test]
    fn moved_objects_old_copy_protected_until_checkpoint() {
        let mut s = SimStore::new(Mode::Strict);
        s.apply(&alloc(1, 0, 10)).unwrap();
        s.apply(&StorageOp::CheckpointBarrier).unwrap();
        // Durable map now points at [0,10).
        s.apply(&StorageOp::Move {
            id: id(1),
            from: ext(0, 10),
            to: ext(20, 10),
        })
        .unwrap();
        // Old location may not be reused yet...
        let err = s.apply(&alloc(2, 0, 10)).unwrap_err();
        assert!(matches!(err, Violation::FreedSpaceRule { .. }));
        // ...and a crash now still recovers object 1 from the old copy.
        let report = s.crash_and_recover();
        assert_eq!(report.recovered, vec![id(1)]);
        assert!(report.is_durable());
    }

    #[test]
    fn recovery_detects_loss_if_rules_bypassed() {
        // Build a store, move an object, then forcibly clobber the ghost by
        // checkpoint-skipping via relaxed mode to simulate a buggy engine.
        let mut s = SimStore::new(Mode::Relaxed);
        s.apply(&alloc(1, 0, 10)).unwrap();
        s.checkpoint(); // durable: 1 -> [0,10)
        s.apply(&StorageOp::Move {
            id: id(1),
            from: ext(0, 10),
            to: ext(20, 10),
        })
        .unwrap();
        // Relaxed mode lets object 2 take the old space immediately.
        s.apply(&alloc(2, 0, 10)).unwrap();
        let report = s.crash_and_recover();
        assert_eq!(report.lost, vec![id(1)]);
        assert!(!report.is_durable());
    }

    #[test]
    fn source_mismatch_detected() {
        let mut s = SimStore::new(Mode::Strict);
        s.apply(&alloc(1, 0, 10)).unwrap();
        let err = s
            .apply(&StorageOp::Move {
                id: id(1),
                from: ext(2, 10),
                to: ext(30, 10),
            })
            .unwrap_err();
        assert!(matches!(err, Violation::SourceMismatch { .. }));
        let err = s
            .apply(&StorageOp::Free {
                id: id(2),
                at: ext(0, 10),
            })
            .unwrap_err();
        assert!(matches!(err, Violation::SourceMismatch { .. }));
    }

    #[test]
    fn chained_moves_without_checkpoint_recover_from_oldest_copy() {
        let mut s = SimStore::new(Mode::Strict);
        s.apply(&alloc(1, 0, 10)).unwrap();
        s.checkpoint();
        s.apply(&StorageOp::Move {
            id: id(1),
            from: ext(0, 10),
            to: ext(20, 10),
        })
        .unwrap();
        s.apply(&StorageOp::Move {
            id: id(1),
            from: ext(20, 10),
            to: ext(40, 10),
        })
        .unwrap();
        // Durable map points at [0,10), which is still a ghost of object 1.
        assert!(s.crash_and_recover().is_durable());
        assert_eq!(s.ghost_spans().len(), 2);
        s.checkpoint();
        assert!(s.ghost_spans().is_empty());
        assert_eq!(s.durable_btl()[&id(1)], ext(40, 10));
    }

    #[test]
    fn footprint_and_peak_track_live_and_ghost_space() {
        let mut s = SimStore::new(Mode::Strict);
        s.apply(&alloc(1, 0, 10)).unwrap();
        s.apply(&StorageOp::Move {
            id: id(1),
            from: ext(0, 10),
            to: ext(90, 10),
        })
        .unwrap();
        assert_eq!(s.footprint(), 100);
        assert_eq!(s.peak_physical_end(), 100);
        s.apply(&StorageOp::CheckpointBarrier).unwrap();
        s.apply(&StorageOp::Move {
            id: id(1),
            from: ext(90, 10),
            to: ext(0, 10),
        })
        .unwrap();
        assert_eq!(s.footprint(), 10);
        assert_eq!(s.peak_physical_end(), 100, "high-water mark is sticky");
    }

    #[test]
    fn verify_matches_reports_divergence() {
        let mut s = SimStore::new(Mode::Strict);
        s.apply(&alloc(1, 0, 10)).unwrap();
        assert!(s
            .verify_matches(|oid| (oid == id(1)).then(|| ext(0, 10)))
            .is_ok());
        assert!(s.verify_matches(|_| None).is_err());
        assert!(s.verify_matches(|_| Some(ext(1, 10))).is_err());
    }

    #[test]
    fn windowed_store_rejects_escaping_writes() {
        let w = AddressWindow::new(1_000, 100);
        assert_eq!(w.global(&ext(5, 10)), ext(1_005, 10));
        assert!(w.admits(&ext(90, 10)));
        assert!(!w.admits(&ext(91, 10)));

        let mut s = SimStore::windowed(Mode::Relaxed, w);
        assert_eq!(s.window(), Some(w));
        s.apply(&alloc(1, 0, 100)).unwrap();
        s.apply(&StorageOp::Free {
            id: id(1),
            at: ext(0, 100),
        })
        .unwrap();
        // Allocate past the span: rejected, state unchanged.
        let err = s.apply(&alloc(2, 95, 10)).unwrap_err();
        assert!(matches!(err, Violation::OutOfWindow { span: 100, .. }));
        // A move escaping the window is rejected with the source restored.
        s.apply(&alloc(3, 0, 10)).unwrap();
        let err = s
            .apply(&StorageOp::Move {
                id: id(3),
                from: ext(0, 10),
                to: ext(95, 10),
            })
            .unwrap_err();
        assert!(matches!(err, Violation::OutOfWindow { .. }));
        assert_eq!(s.extent_of(id(3)), Some(ext(0, 10)));
    }

    #[test]
    fn shard_windows_are_disjoint() {
        let a = AddressWindow::for_shard(0, 1 << 20);
        let b = AddressWindow::for_shard(1, 1 << 20);
        assert_eq!(a.base + a.span, b.base);
        // The same window-relative extent maps to disjoint global extents.
        let local = ext(17, 64);
        assert!(!a.global(&local).overlaps(&b.global(&local)));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_span_window_rejected() {
        AddressWindow::new(0, 0);
    }

    #[test]
    fn live_spans_sorted_by_address() {
        let mut s = SimStore::new(Mode::Relaxed);
        s.apply(&alloc(1, 50, 10)).unwrap();
        s.apply(&alloc(2, 0, 10)).unwrap();
        s.apply(&alloc(3, 20, 10)).unwrap();
        let spans = s.live_spans();
        let offsets: Vec<u64> = spans.iter().map(|(e, _)| e.offset).collect();
        assert_eq!(offsets, vec![0, 20, 50]);
    }
}
