//! Per-shard write-ahead log with group commit, plus the checkpoint file
//! that truncates it.
//!
//! Each shard worker journals a [`WalRecord`] for every *applied* physical
//! op (allocations, flush copies, frees, cross-shard transfers) and every
//! route flip, buffering records in memory and writing them as **one framed
//! group commit per command boundary** — the WAL analogue of the engine's
//! channel batching, and the reason a WAL'd shard pays one fsync per batch
//! instead of one per op. Records that were appended but never committed
//! are exactly the work a crash is allowed to lose; everything inside a
//! committed frame is recovered.
//!
//! ## Frame format
//!
//! ```text
//!   [ magic "WAL1" u32 ][ epoch u32 ][ payload_len u32 ][ crc u64 ]
//!   [ payload: records, each tag u8 + fields as u64 LE ]
//! ```
//!
//! The CRC (FNV-1a, the same hash the substrate uses for object checksums)
//! covers the payload. Replay stops at the first frame whose header is
//! short, whose payload is truncated, or whose CRC disagrees — a torn tail
//! from a crash mid-commit is *discarded*, never half-applied.
//!
//! ## Checkpoint / truncate protocol
//!
//! A checkpoint captures the shard's full durable state (live extents with
//! byte digests + which ids the routing table assigns to this shard) under
//! `epoch + 1`, written to a temp file and atomically renamed; only then is
//! the log truncated and the writer's epoch advanced. Replay skips frames
//! whose epoch is *older* than the checkpoint's, so a crash between the
//! rename and the truncate is safe: the stale frames describe state the
//! checkpoint already contains.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use realloc_common::ObjectId;

/// Frame magic: `b"WAL1"`.
const WAL_MAGIC: u32 = u32::from_le_bytes(*b"WAL1");
/// Checkpoint magic: `b"CKP1"`.
const CKPT_MAGIC: u32 = u32::from_le_bytes(*b"CKP1");
/// Frame header: magic + epoch + payload_len + crc.
const FRAME_HEADER: usize = 4 + 4 + 4 + 8;

/// Frame CRC: the workspace's standard content hash (FNV-1a), shared with
/// the substrate's object checksums.
use crate::data::checksum as fnv1a;

/// One journaled event. Everything a shard does that affects durable state
/// maps to exactly one record; replaying the committed records over the
/// last checkpoint reproduces the shard's live set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecord {
    /// An object was allocated (insert or migrate-arrival) at `offset`
    /// with `len` cells whose bytes hash to `digest`.
    Allocate {
        /// The object.
        id: ObjectId,
        /// Start address inside the shard's window.
        offset: u64,
        /// Cells.
        len: u64,
        /// FNV-1a of the object's bytes at allocation time.
        digest: u64,
    },
    /// A flush copy moved an object inside the shard (bytes unchanged).
    Move {
        /// The object.
        id: ObjectId,
        /// Old start address.
        from: u64,
        /// New start address.
        to: u64,
        /// Cells.
        len: u64,
    },
    /// An object was freed (delete or post-move release).
    Free {
        /// The object.
        id: ObjectId,
        /// Start address of the freed extent.
        offset: u64,
        /// Cells.
        len: u64,
    },
    /// The object left this shard in cross-shard transfer `xfer`.
    MigrateOut {
        /// The object.
        id: ObjectId,
        /// Cells shipped.
        size: u64,
        /// Globally unique transfer sequence number (pairs this record
        /// with the target's [`WalRecord::MigrateIn`]).
        xfer: u64,
    },
    /// The object arrived on this shard in cross-shard transfer `xfer`.
    MigrateIn {
        /// The object.
        id: ObjectId,
        /// Start address inside this shard's window.
        offset: u64,
        /// Cells.
        len: u64,
        /// FNV-1a of the shipped payload bytes, verified on arrival.
        digest: u64,
        /// The transfer this arrival completes.
        xfer: u64,
    },
    /// The routing table now assigns `id` to `shard` (journaled by the
    /// *target* shard of transfer `xfer`, after its `MigrateIn`).
    RouteFlip {
        /// The re-homed object.
        id: ObjectId,
        /// Its new owner.
        shard: u64,
        /// The transfer that earned the flip.
        xfer: u64,
    },
}

impl WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut put = |tag: u8, fields: &[u64]| {
            out.push(tag);
            for f in fields {
                out.extend_from_slice(&f.to_le_bytes());
            }
        };
        match *self {
            WalRecord::Allocate {
                id,
                offset,
                len,
                digest,
            } => put(1, &[id.0, offset, len, digest]),
            WalRecord::Move { id, from, to, len } => put(2, &[id.0, from, to, len]),
            WalRecord::Free { id, offset, len } => put(3, &[id.0, offset, len]),
            WalRecord::MigrateOut { id, size, xfer } => put(4, &[id.0, size, xfer]),
            WalRecord::MigrateIn {
                id,
                offset,
                len,
                digest,
                xfer,
            } => put(5, &[id.0, offset, len, digest, xfer]),
            WalRecord::RouteFlip { id, shard, xfer } => put(6, &[id.0, shard, xfer]),
        }
    }

    fn decode(buf: &[u8], at: &mut usize) -> Option<WalRecord> {
        let tag = *buf.get(*at)?;
        *at += 1;
        let mut field = || -> Option<u64> {
            let bytes = buf.get(*at..*at + 8)?;
            *at += 8;
            Some(u64::from_le_bytes(bytes.try_into().unwrap()))
        };
        Some(match tag {
            1 => WalRecord::Allocate {
                id: ObjectId(field()?),
                offset: field()?,
                len: field()?,
                digest: field()?,
            },
            2 => WalRecord::Move {
                id: ObjectId(field()?),
                from: field()?,
                to: field()?,
                len: field()?,
            },
            3 => WalRecord::Free {
                id: ObjectId(field()?),
                offset: field()?,
                len: field()?,
            },
            4 => WalRecord::MigrateOut {
                id: ObjectId(field()?),
                size: field()?,
                xfer: field()?,
            },
            5 => WalRecord::MigrateIn {
                id: ObjectId(field()?),
                offset: field()?,
                len: field()?,
                digest: field()?,
                xfer: field()?,
            },
            6 => WalRecord::RouteFlip {
                id: ObjectId(field()?),
                shard: field()?,
                xfer: field()?,
            },
            _ => return None,
        })
    }
}

/// The log file for shard `shard` under `dir`.
pub fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

/// The checkpoint file for shard `shard` under `dir`.
pub fn checkpoint_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ckpt"))
}

/// An appender over one shard's log: [`append`](Self::append) buffers,
/// [`commit`](Self::commit) writes everything buffered as one frame.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    epoch: u32,
    pending: Vec<WalRecord>,
    records: u64,
    bytes: u64,
    commits: u64,
}

impl WalWriter {
    /// Opens (creating if absent) the log at `path`, stamping future frames
    /// with `epoch` — pass the epoch of the checkpoint recovery loaded, or
    /// 0 for a fresh shard.
    pub fn open(path: &Path, epoch: u32) -> std::io::Result<WalWriter> {
        OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            epoch,
            pending: Vec::new(),
            records: 0,
            bytes: 0,
            commits: 0,
        })
    }

    /// Buffers one record for the next group commit. Nothing is durable
    /// until [`commit`](Self::commit).
    pub fn append(&mut self, record: WalRecord) {
        self.pending.push(record);
    }

    /// Writes every buffered record as one framed group commit and flushes.
    /// Returns the frame bytes written (0 if nothing was pending — an empty
    /// batch costs no I/O).
    pub fn commit(&mut self) -> std::io::Result<u64> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let mut payload = Vec::new();
        for rec in &self.pending {
            rec.encode(&mut payload);
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        frame.extend_from_slice(&self.epoch.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut file = OpenOptions::new().append(true).open(&self.path)?;
        file.write_all(&frame)?;
        file.flush()?;

        self.records += self.pending.len() as u64;
        self.bytes += frame.len() as u64;
        self.commits += 1;
        self.pending.clear();
        Ok(frame.len() as u64)
    }

    /// Truncates the log and advances the writer to `epoch` — call only
    /// *after* the checkpoint carrying `epoch` is durably renamed.
    pub fn truncate_to_epoch(&mut self, epoch: u32) -> std::io::Result<()> {
        debug_assert!(self.pending.is_empty(), "commit before checkpointing");
        OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        self.epoch = epoch;
        Ok(())
    }

    /// The epoch future frames will carry.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Records buffered but not yet committed (lost if the process dies).
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// Records committed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Frame bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Group commits (frames) written so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }
}

/// One committed frame read back from a log, with the byte offset of its
/// end — the kill-point matrix truncates a log at exactly these offsets to
/// simulate a crash after each group commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalGroup {
    /// The epoch the frame was stamped with.
    pub epoch: u32,
    /// The records the group committed, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past this frame in the file.
    pub end_offset: u64,
}

/// Reads every intact committed group from the log at `path`. A missing
/// file is an empty log. A torn or corrupt tail (short header, truncated
/// payload, CRC mismatch, bad magic, malformed record) ends the scan at the
/// last intact frame — exactly the crash-discard semantics replay wants.
pub fn read_wal(path: &Path) -> std::io::Result<Vec<WalGroup>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }

    let mut groups = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= FRAME_HEADER {
        let word =
            |o: usize| -> u32 { u32::from_le_bytes(bytes[at + o..at + o + 4].try_into().unwrap()) };
        if word(0) != WAL_MAGIC {
            break;
        }
        let epoch = word(4);
        let payload_len = word(8) as usize;
        let crc = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap());
        let start = at + FRAME_HEADER;
        let Some(payload) = bytes.get(start..start + payload_len) else {
            break; // torn tail: frame promised more payload than exists
        };
        if fnv1a(payload) != crc {
            break; // corrupt frame: treat it (and everything after) as lost
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut intact = true;
        while pos < payload.len() {
            match WalRecord::decode(payload, &mut pos) {
                Some(rec) => records.push(rec),
                None => {
                    intact = false;
                    break;
                }
            }
        }
        if !intact {
            break;
        }
        at = start + payload_len;
        groups.push(WalGroup {
            epoch,
            records,
            end_offset: at as u64,
        });
    }
    Ok(groups)
}

/// One live object (or routing assignment) in a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// The object.
    pub id: ObjectId,
    /// Start address inside the shard's window at checkpoint time.
    pub offset: u64,
    /// Cells.
    pub len: u64,
    /// FNV-1a of the object's bytes at checkpoint time.
    pub digest: u64,
    /// Whether the routing table explicitly assigns this id to the shard
    /// (true for ids living off the rendezvous fallback — the tiny
    /// assignment table rides inside the shard checkpoint).
    pub assigned: bool,
}

/// A shard's durable state at a quiesce barrier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// The epoch this checkpoint begins; log frames stamped with an older
    /// epoch predate it and are skipped on replay.
    pub epoch: u32,
    /// Every live object, with its routing-assignment flag.
    pub entries: Vec<CheckpointEntry>,
}

/// Writes `ckpt` to `path` atomically (temp file + rename), so a crash
/// mid-checkpoint leaves the previous checkpoint intact.
pub fn write_checkpoint(path: &Path, ckpt: &Checkpoint) -> std::io::Result<()> {
    let mut payload = Vec::with_capacity(ckpt.entries.len() * 33);
    for e in &ckpt.entries {
        payload.extend_from_slice(&e.id.0.to_le_bytes());
        payload.extend_from_slice(&e.offset.to_le_bytes());
        payload.extend_from_slice(&e.len.to_le_bytes());
        payload.extend_from_slice(&e.digest.to_le_bytes());
        payload.push(e.assigned as u8);
    }
    let mut bytes = Vec::with_capacity(FRAME_HEADER + payload.len());
    bytes.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    bytes.extend_from_slice(&ckpt.epoch.to_le_bytes());
    bytes.extend_from_slice(&(ckpt.entries.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = path.with_extension("ckpt.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.flush()?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads the checkpoint at `path`; `Ok(None)` if none was ever written.
/// Unlike the log (whose tail may legitimately be torn), a checkpoint is
/// renamed into place atomically, so corruption here is a hard error.
pub fn read_checkpoint(path: &Path) -> std::io::Result<Option<Checkpoint>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let corrupt = || std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt checkpoint");
    if bytes.len() < FRAME_HEADER {
        return Err(corrupt());
    }
    let word = |o: usize| -> u32 { u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap()) };
    if word(0) != CKPT_MAGIC {
        return Err(corrupt());
    }
    let epoch = word(4);
    let count = word(8) as usize;
    let crc = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload = &bytes[FRAME_HEADER..];
    if payload.len() != count * 33 || fnv1a(payload) != crc {
        return Err(corrupt());
    }
    let mut entries = Vec::with_capacity(count);
    for chunk in payload.chunks_exact(33) {
        let field = |o: usize| u64::from_le_bytes(chunk[o..o + 8].try_into().unwrap());
        entries.push(CheckpointEntry {
            id: ObjectId(field(0)),
            offset: field(8),
            len: field(16),
            digest: field(24),
            assigned: chunk[32] != 0,
        });
    }
    Ok(Some(Checkpoint { epoch, entries }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("realloc-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Allocate {
                id: ObjectId(7),
                offset: 0,
                len: 16,
                digest: 0xdead,
            },
            WalRecord::Move {
                id: ObjectId(7),
                from: 0,
                to: 32,
                len: 16,
            },
            WalRecord::Free {
                id: ObjectId(9),
                offset: 64,
                len: 8,
            },
            WalRecord::MigrateOut {
                id: ObjectId(7),
                size: 16,
                xfer: 3,
            },
            WalRecord::MigrateIn {
                id: ObjectId(11),
                offset: 128,
                len: 4,
                digest: 0xbeef,
                xfer: 4,
            },
            WalRecord::RouteFlip {
                id: ObjectId(11),
                shard: 2,
                xfer: 4,
            },
        ]
    }

    #[test]
    fn group_commit_round_trips_every_record_kind() {
        let dir = tmpdir("roundtrip");
        let path = wal_path(&dir, 0);
        let mut w = WalWriter::open(&path, 5).unwrap();
        for rec in sample_records() {
            w.append(rec);
        }
        assert_eq!(w.pending_records(), 6);
        assert_eq!(w.commits(), 0, "append alone must not touch the file");
        assert!(read_wal(&path).unwrap().is_empty());

        let frame = w.commit().unwrap();
        assert!(frame > 0);
        assert_eq!((w.records(), w.commits(), w.bytes()), (6, 1, frame));

        let groups = read_wal(&path).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].epoch, 5);
        assert_eq!(groups[0].records, sample_records());
        assert_eq!(groups[0].end_offset, frame);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_commit_is_free() {
        let dir = tmpdir("empty");
        let mut w = WalWriter::open(&wal_path(&dir, 0), 0).unwrap();
        assert_eq!(w.commit().unwrap(), 0);
        assert_eq!((w.commits(), w.bytes()), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_at_every_cut() {
        let dir = tmpdir("torn");
        let path = wal_path(&dir, 0);
        let mut w = WalWriter::open(&path, 1).unwrap();
        w.append(WalRecord::Allocate {
            id: ObjectId(1),
            offset: 0,
            len: 8,
            digest: 1,
        });
        w.commit().unwrap();
        let first = read_wal(&path).unwrap()[0].end_offset;
        w.append(WalRecord::Free {
            id: ObjectId(1),
            offset: 0,
            len: 8,
        });
        w.commit().unwrap();
        let whole = std::fs::read(&path).unwrap();

        // Cut the file at every byte inside the second frame: the first
        // group always survives, the torn second is always discarded.
        for cut in first as usize..whole.len() {
            std::fs::write(&path, &whole[..cut]).unwrap();
            let groups = read_wal(&path).unwrap();
            assert_eq!(groups.len(), 1, "cut at {cut}");
            assert_eq!(groups[0].end_offset, first);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_ends_the_scan() {
        let dir = tmpdir("corrupt");
        let path = wal_path(&dir, 0);
        let mut w = WalWriter::open(&path, 0).unwrap();
        w.append(WalRecord::Allocate {
            id: ObjectId(1),
            offset: 0,
            len: 8,
            digest: 1,
        });
        w.commit().unwrap();
        w.append(WalRecord::Allocate {
            id: ObjectId(2),
            offset: 8,
            len: 8,
            digest: 2,
        });
        w.commit().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let first_end = read_wal(&path).unwrap()[0].end_offset as usize;
        *bytes.last_mut().unwrap() ^= 0xff; // flip a payload byte in frame 2
        std::fs::write(&path, &bytes).unwrap();
        let groups = read_wal(&path).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].end_offset, first_end as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_log_is_empty() {
        let dir = tmpdir("missing");
        assert!(read_wal(&wal_path(&dir, 3)).unwrap().is_empty());
        assert!(read_checkpoint(&checkpoint_path(&dir, 3))
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_advances_epoch_and_clears_log() {
        let dir = tmpdir("truncate");
        let path = wal_path(&dir, 0);
        let mut w = WalWriter::open(&path, 0).unwrap();
        w.append(WalRecord::Allocate {
            id: ObjectId(1),
            offset: 0,
            len: 8,
            digest: 1,
        });
        w.commit().unwrap();
        w.truncate_to_epoch(1).unwrap();
        assert_eq!(w.epoch(), 1);
        assert!(read_wal(&path).unwrap().is_empty());
        w.append(WalRecord::Free {
            id: ObjectId(1),
            offset: 0,
            len: 8,
        });
        w.commit().unwrap();
        let groups = read_wal(&path).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].epoch, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trips_and_is_atomic() {
        let dir = tmpdir("ckpt");
        let path = checkpoint_path(&dir, 2);
        let ckpt = Checkpoint {
            epoch: 4,
            entries: vec![
                CheckpointEntry {
                    id: ObjectId(1),
                    offset: 0,
                    len: 16,
                    digest: 0xaa,
                    assigned: false,
                },
                CheckpointEntry {
                    id: ObjectId(2),
                    offset: 16,
                    len: 4,
                    digest: 0xbb,
                    assigned: true,
                },
            ],
        };
        write_checkpoint(&path, &ckpt).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().unwrap(), ckpt);
        assert!(
            !path.with_extension("ckpt.tmp").exists(),
            "temp file must be renamed away"
        );

        // Overwriting is atomic too: the new checkpoint fully replaces it.
        let newer = Checkpoint {
            epoch: 5,
            entries: Vec::new(),
        };
        write_checkpoint(&path, &newer).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().unwrap(), newer);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let dir = tmpdir("ckpt-corrupt");
        let path = checkpoint_path(&dir, 0);
        let ckpt = Checkpoint {
            epoch: 1,
            entries: vec![CheckpointEntry {
                id: ObjectId(1),
                offset: 0,
                len: 8,
                digest: 9,
                assigned: false,
            }],
        };
        write_checkpoint(&path, &ckpt).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_checkpoint(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
