#![warn(missing_docs)]
//! Simulated database storage substrate.
//!
//! The paper (Section 3.1) abstracts a database's storage engine — modelled
//! on TokuDB's *block translation layer* — to three rules:
//!
//! 1. **Names are immutable, addresses are not.** Requests refer to objects
//!    by name; a translation layer maps names to physical extents and is
//!    written out durably at every checkpoint.
//! 2. **Nonoverlapping moves.** Object writes are not atomic, so an object's
//!    new location must be disjoint from its old one.
//! 3. **The freed-space rule.** Space freed after the last checkpoint may
//!    not be rewritten until the next checkpoint completes; otherwise a
//!    crash could lose the only durable copy of an object.
//!
//! [`SimStore`] replays a reallocator's [`StorageOp`] stream while enforcing
//! whichever of these rules the selected [`Mode`] demands, maintains the
//! durable translation map, and can simulate a crash at any instant to
//! verify that recovery from the last checkpoint finds every mapped object
//! intact. [`DataStore`] layers actual bytes (and per-object [`checksum`]s)
//! on top, so corruption — not only rule violations — is detectable, and
//! [`AddressWindow`]-bounded stores give a sharded engine provably disjoint
//! per-shard slices of one global device, with
//! [`DataStore::adopt`] verifying every cross-window transfer's bytes on
//! arrival.
//!
//! [`StorageOp`]: realloc_common::StorageOp

pub mod data;
pub mod device;
pub mod store;
pub mod wal;

pub use data::{checksum, pattern_for, transfer_checksum, DataRecoveryReport, DataStore};
pub use device::DeviceModel;
pub use store::{AddressWindow, Mode, RecoveryReport, SimStore, SpanState, Violation};
pub use wal::{
    read_checkpoint, read_wal, write_checkpoint, Checkpoint, CheckpointEntry, WalGroup, WalRecord,
    WalWriter,
};
