//! Device latency models: price an op stream in simulated time.
//!
//! The algorithms never see these numbers (cost obliviousness); the models
//! exist so examples and experiments can report "simulated milliseconds on a
//! disk-like device" instead of abstract cost units.

use cost_model::CostFn;
use realloc_common::StorageOp;

/// A storage device characterized by a per-object transfer cost function and
/// a fixed checkpoint latency.
///
/// The cost box is `Send` so a model can live inside a shard worker thread
/// (every [`CostFn`] in `cost-model` is plain data).
pub struct DeviceModel {
    cost: Box<dyn CostFn + Send>,
    checkpoint_latency: f64,
}

impl DeviceModel {
    /// A device whose allocate/move latency for a `w`-cell object is
    /// `cost.cost(w)` and whose checkpoints take `checkpoint_latency`.
    pub fn new(cost: Box<dyn CostFn + Send>, checkpoint_latency: f64) -> Self {
        assert!(checkpoint_latency >= 0.0);
        DeviceModel {
            cost,
            checkpoint_latency,
        }
    }

    /// Name of the underlying cost function.
    pub fn name(&self) -> &'static str {
        self.cost.name()
    }

    /// Simulated time to execute one op.
    pub fn time_of(&self, op: &StorageOp) -> f64 {
        match op {
            StorageOp::Allocate { to, .. } => self.cost.cost(to.len),
            StorageOp::Move { to, .. } => self.cost.cost(to.len),
            StorageOp::Free { .. } => 0.0,
            StorageOp::CheckpointBarrier => self.checkpoint_latency,
        }
    }

    /// Simulated time to execute a whole stream.
    pub fn time_of_stream(&self, ops: &[StorageOp]) -> f64 {
        ops.iter().map(|op| self.time_of(op)).sum()
    }

    /// Simulated time for one WAL group commit of `frame_bytes` bytes: the
    /// transfer cost of the frame plus the fixed sync latency (the same
    /// fixed term a checkpoint pays — an fsync is a tiny checkpoint). This
    /// is how a run converts `wal_bytes` / `group_commits` counters into
    /// device time: `commits · time_of_commit(bytes / commits)` prices the
    /// coalesced schedule, `records · time_of_commit(record_size)` what
    /// per-op syncing would have cost.
    pub fn time_of_commit(&self, frame_bytes: u64) -> f64 {
        self.cost.cost(frame_bytes) + self.checkpoint_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cost_model::{Affine, Unit};
    use realloc_common::{Extent, ObjectId};

    #[test]
    fn prices_ops_by_kind() {
        let dev = DeviceModel::new(Box::new(Affine::disk(10.0, 1.0)), 100.0);
        let a = StorageOp::Allocate {
            id: ObjectId(1),
            to: Extent::new(0, 5),
        };
        let m = StorageOp::Move {
            id: ObjectId(1),
            from: Extent::new(0, 5),
            to: Extent::new(10, 5),
        };
        let f = StorageOp::Free {
            id: ObjectId(1),
            at: Extent::new(10, 5),
        };
        let c = StorageOp::CheckpointBarrier;
        assert_eq!(dev.time_of(&a), 15.0);
        assert_eq!(dev.time_of(&m), 15.0);
        assert_eq!(dev.time_of(&f), 0.0);
        assert_eq!(dev.time_of(&c), 100.0);
        assert_eq!(dev.time_of_stream(&[a, m, f, c]), 130.0);
    }

    #[test]
    fn group_commit_amortizes_the_sync_latency() {
        // Affine disk: seek 10 + 1/byte; sync latency 100. One coalesced
        // 64-byte commit beats 8 separate 8-byte commits by ~7 syncs.
        let dev = DeviceModel::new(Box::new(Affine::disk(10.0, 1.0)), 100.0);
        let grouped = dev.time_of_commit(64);
        let per_op = 8.0 * dev.time_of_commit(8);
        assert_eq!(grouped, 174.0);
        assert_eq!(per_op, 944.0);
        assert!(grouped < per_op);
    }

    #[test]
    fn unit_device_counts_operations() {
        let dev = DeviceModel::new(Box::new(Unit), 0.0);
        let ops = vec![
            StorageOp::Allocate {
                id: ObjectId(1),
                to: Extent::new(0, 1000),
            },
            StorageOp::Move {
                id: ObjectId(1),
                from: Extent::new(0, 1000),
                to: Extent::new(2000, 1000),
            },
        ];
        assert_eq!(dev.time_of_stream(&ops), 2.0);
    }
}
