//! # storage-realloc
//!
//! A complete implementation of **Cost-Oblivious Storage Reallocation**
//! (Bender, Farach-Colton, Fekete, Fineman, Gilbert — PODS 2014), plus the
//! substrates and baselines needed to reproduce the paper end to end.
//!
//! A *storage reallocator* serves an online sequence of object inserts and
//! deletes and may **move** previously allocated objects, paying an unknown
//! monotone subadditive cost `f(w)` per moved `w`-cell object. The paper's
//! algorithms keep the footprint within `(1+ε)` of the live volume while
//! paying at most `O((1/ε) log(1/ε))` times the mandatory allocation cost —
//! simultaneously for *every* such `f`, without ever looking at it.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`core`] | `realloc-core` | the paper's algorithms (§2, §3.2, §3.3, Thm 2.7) |
//! | [`common`] | `realloc-common` | shared types: ids, extents, ops, the [`Reallocator`](common::Reallocator) trait, cost ledger |
//! | [`cost`] | `cost-model` | the `Fsa` cost-function suite + membership checks |
//! | [`sim`] | `storage-sim` | block translation layer, checkpoint rules, crash recovery |
//! | [`workloads`] | `workload-gen` | churn/trace/adversarial request generators + the shard splitter |
//! | [`baselines`] | `alloc-baselines` | first/best/next-fit, buddy, log-compact, size-class-gaps |
//! | [`engine`] | `realloc-engine` | sharded, multi-threaded serving layer over any of the above |
//!
//! ## Quickstart
//!
//! ```
//! use storage_realloc::prelude::*;
//!
//! let mut r = CostObliviousReallocator::new(0.5); // footprint ≤ 1.5·V
//! r.insert(ObjectId(1), 4096).unwrap();
//! r.insert(ObjectId(2), 128).unwrap();
//! r.delete(ObjectId(1)).unwrap();
//! assert!(r.structure_size() as f64 <= 1.5 * r.live_volume() as f64);
//! ```
//!
//! See `examples/` for a database block store with crash recovery, a
//! defragmentation tool, and the scheduling interpretation.

pub use alloc_baselines as baselines;
pub use cost_model as cost;
pub use realloc_common as common;
pub use realloc_core as core;
pub use realloc_engine as engine;
pub use storage_sim as sim;
pub use workload_gen as workloads;

pub mod harness;

/// One-stop imports for examples and experiments.
pub mod prelude {
    pub use crate::baselines::{
        BuddyAllocator, FitStrategy, FreeListAllocator, LogCompactAllocator, SizeClassGapsAllocator,
    };
    pub use crate::common::{
        BoxedReallocator, Extent, HashRouter, Ledger, ObjectId, OpKind, Outcome, ReallocError,
        Reallocator, Router, StorageOp, TableRouter,
    };
    pub use crate::core::{
        defragment, CheckpointedReallocator, CostObliviousReallocator, DeamortizedReallocator,
        NearlyQuadraticReallocator,
    };
    pub use crate::cost::{standard_suite, CostFn};
    pub use crate::engine::{
        Ack, AsyncEngine, DefragSummary, DeviceProfile, Engine, EngineConfig, EngineError,
        EngineStats, Fleet, FleetConfig, HistogramSnapshot, Json, MetricsSnapshot, OnlinePlan,
        QuiesceFuture, RebalanceMode, RebalanceOptions, RebalancePolicy, RebalanceReport,
        RecoveryReport, ResizeReport, ShardMetrics, ShardStats, StealStats, SubstrateConfig,
        SubstrateReport, TraceEvent, VerifyCadence,
    };
    pub use crate::harness::{
        build_variant, run_workload, variant_is_strict_safe, RunConfig, RunResult, VARIANTS,
    };
    pub use crate::sim::{checksum, pattern_for, AddressWindow, DataStore, Mode, SimStore};
    pub use crate::workloads::{Request, Workload};
}
