//! The experiment harness: drives a [`Workload`] through any
//! [`Reallocator`], accounts every request in a [`Ledger`], and (optionally)
//! replays the emitted op stream against a [`SimStore`] that enforces the
//! database rules and cross-checks placements.
//!
//! Every bench target, example, and integration test goes through this one
//! driver, so an algorithm bug, an accounting bug, or a rules violation
//! surfaces identically everywhere.

use realloc_common::{Ledger, OpKind, Reallocator};
use storage_sim::{Mode, SimStore, Violation};
use workload_gen::{Request, Workload};

/// What the driver should do besides accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Replay ops against a `SimStore` in this mode, validating every write
    /// and cross-checking placements after every request.
    pub replay: Option<Mode>,
    /// Simulate a crash after every request and require full recovery
    /// (only meaningful with `replay = Some(Mode::Strict)`). Quadratic-ish:
    /// use on small workloads.
    pub crash_check: bool,
}

impl RunConfig {
    /// Accounting only.
    pub fn plain() -> Self {
        RunConfig::default()
    }

    /// Replay with memmove semantics (§2 algorithms).
    pub fn relaxed() -> Self {
        RunConfig {
            replay: Some(Mode::Relaxed),
            crash_check: false,
        }
    }

    /// Replay under the full database rules (§3 algorithms).
    pub fn strict() -> Self {
        RunConfig {
            replay: Some(Mode::Strict),
            crash_check: false,
        }
    }

    /// Strict replay plus a crash/recovery check after every request.
    pub fn strict_with_crashes() -> Self {
        RunConfig {
            replay: Some(Mode::Strict),
            crash_check: true,
        }
    }
}

/// Errors the driver can surface.
#[derive(Debug)]
pub enum RunError {
    /// The reallocator rejected a request the workload generator produced.
    Realloc(usize, realloc_common::ReallocError),
    /// The op stream violated the substrate rules.
    Substrate(usize, Violation),
    /// The substrate and the reallocator disagree about a placement.
    Divergence(usize, String),
    /// A simulated crash lost durably-mapped objects.
    DurabilityLoss(usize, Vec<realloc_common::ObjectId>),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Realloc(i, e) => write!(f, "request {i}: {e}"),
            RunError::Substrate(i, v) => write!(f, "request {i}: {v}"),
            RunError::Divergence(i, d) => write!(f, "request {i}: divergence: {d}"),
            RunError::DurabilityLoss(i, ids) => {
                write!(f, "request {i}: crash would lose {} objects", ids.len())
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Everything measured over one run.
pub struct RunResult {
    /// Algorithm name.
    pub name: &'static str,
    /// Per-request cost/space accounting.
    pub ledger: Ledger,
    /// Final structure size.
    pub final_structure: u64,
    /// Final live volume.
    pub final_volume: u64,
    /// `∆` observed.
    pub delta: u64,
    /// The substrate, if replay was requested (for further inspection).
    pub sim: Option<SimStore>,
}

impl RunResult {
    /// Footprint competitive ratio at the end of the run.
    pub fn final_space_ratio(&self) -> f64 {
        if self.final_volume == 0 {
            1.0
        } else {
            self.final_structure as f64 / self.final_volume as f64
        }
    }
}

/// Runs `workload` through `realloc` under `config`.
pub fn run_workload(
    realloc: &mut dyn Reallocator,
    workload: &Workload,
    config: RunConfig,
) -> Result<RunResult, RunError> {
    let mut ledger = Ledger::new();
    let mut sim = config.replay.map(SimStore::new);

    for (i, req) in workload.requests.iter().enumerate() {
        let (kind, request_size, allocated, outcome) = match *req {
            Request::Insert { id, size } => {
                let out = realloc
                    .insert(id, size)
                    .map_err(|e| RunError::Realloc(i, e))?;
                (OpKind::Insert, size, Some(size), out)
            }
            Request::Delete { id } => {
                let size = realloc.extent_of(id).map_or(0, |e| e.len);
                let out = realloc.delete(id).map_err(|e| RunError::Realloc(i, e))?;
                (OpKind::Delete, size, None, out)
            }
        };

        if let Some(sim) = sim.as_mut() {
            sim.apply_all(&outcome.ops)
                .map_err(|v| RunError::Substrate(i, v))?;
            sim.verify_matches(|id| realloc.extent_of(id))
                .map_err(|d| RunError::Divergence(i, d))?;
            if config.crash_check {
                let report = sim.crash_and_recover();
                if !report.is_durable() {
                    return Err(RunError::DurabilityLoss(i, report.lost));
                }
            }
        }

        ledger.record(
            kind,
            request_size,
            allocated,
            &outcome,
            realloc.structure_size(),
            realloc.live_volume(),
            realloc.max_object_size(),
        );
    }

    Ok(RunResult {
        name: realloc.name(),
        ledger,
        final_structure: realloc.structure_size(),
        final_volume: realloc.live_volume(),
        delta: realloc.max_object_size(),
        sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::{CheckpointedReallocator, CostObliviousReallocator};
    use workload_gen::churn::{churn, ChurnConfig};
    use workload_gen::dist::SizeDist;

    fn small_churn(seed: u64) -> Workload {
        churn(&ChurnConfig {
            dist: SizeDist::Uniform { lo: 1, hi: 64 },
            target_volume: 2_000,
            churn_ops: 500,
            seed,
        })
    }

    #[test]
    fn amortized_replays_relaxed() {
        let w = small_churn(1);
        let mut r = CostObliviousReallocator::new(0.5);
        let result = run_workload(&mut r, &w, RunConfig::relaxed()).unwrap();
        assert!(result.ledger.len() == w.len());
        assert!(result.final_space_ratio() <= 1.5 + 1e-9);
    }

    #[test]
    fn checkpointed_replays_strict_with_crashes() {
        let w = small_churn(2);
        let mut r = CheckpointedReallocator::new(0.5);
        let result = run_workload(&mut r, &w, RunConfig::strict_with_crashes()).unwrap();
        let sim = result.sim.unwrap();
        assert!(sim.checkpoints() > 0, "flushes must have checkpointed");
    }

    #[test]
    fn amortized_under_strict_rules_fails() {
        // Negative control: the §2 algorithm violates the database rules
        // (overlapping compaction moves / freed-space reuse), which is the
        // entire reason §3 exists.
        let w = small_churn(3);
        let mut r = CostObliviousReallocator::new(0.5);
        let err = run_workload(&mut r, &w, RunConfig::strict());
        assert!(
            matches!(err, Err(RunError::Substrate(..))),
            "expected a rules violation"
        );
    }

    #[test]
    fn plain_run_has_no_sim() {
        let w = small_churn(4);
        let mut r = CostObliviousReallocator::new(0.25);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        assert!(result.sim.is_none());
    }
}
