//! The experiment harness: drives a [`Workload`] through any
//! [`Reallocator`], accounts every request in a [`Ledger`], and (optionally)
//! replays the emitted op stream against a [`SimStore`] that enforces the
//! database rules and cross-checks placements.
//!
//! Every bench target, example, and integration test goes through this one
//! driver, so an algorithm bug, an accounting bug, or a rules violation
//! surfaces identically everywhere.

use std::collections::HashSet;
use std::path::Path;

use realloc_common::{BoxedReallocator, Ledger, ObjectId, OpKind, Reallocator, StorageOp};
use realloc_core::{
    CheckpointedReallocator, CostObliviousReallocator, DeamortizedReallocator,
    NearlyQuadraticReallocator,
};
use storage_sim::wal::{checkpoint_path, wal_path, write_checkpoint};
use storage_sim::{
    checksum, pattern_for, Checkpoint, CheckpointEntry, DataStore, Mode, SimStore, Violation,
    WalRecord, WalWriter,
};
use workload_gen::{Request, Workload};

/// Canonical registry names of the paper-variant reallocators, in
/// chronological order: §2 amortized, §3.2 checkpointed, §3.3 deamortized,
/// and the 2024 nearly-quadratic adaptation. Every variant-parameterized
/// test suite, bench, and the CLI iterate or resolve against this one list,
/// so adding a fifth variant here enrolls it everywhere at once.
pub const VARIANTS: [&str; 4] = [
    "cost-oblivious",
    "checkpointed",
    "deamortized",
    "nearly-quadratic",
];

/// Builds the named variant at footprint slack `eps`, or `None` for an
/// unknown name. The one constructor shared by the CLI, the test gauntlet,
/// and the benches.
pub fn build_variant(name: &str, eps: f64) -> Option<BoxedReallocator> {
    Some(match name {
        "cost-oblivious" => Box::new(CostObliviousReallocator::new(eps)),
        "checkpointed" => Box::new(CheckpointedReallocator::new(eps)),
        "deamortized" => Box::new(DeamortizedReallocator::new(eps)),
        "nearly-quadratic" => Box::new(NearlyQuadraticReallocator::new(eps)),
        _ => return None,
    })
}

/// Whether the named variant's op streams obey the §3.1 database rules
/// (nonoverlapping moves, the freed-space rule) and may therefore run on a
/// strict substrate. The §2 amortized variant uses memmove semantics.
pub fn variant_is_strict_safe(name: &str) -> bool {
    matches!(name, "checkpointed" | "deamortized" | "nearly-quadratic")
}

/// What the driver should do besides accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Replay ops against a `SimStore` in this mode, validating every write
    /// and cross-checking placements after every request.
    pub replay: Option<Mode>,
    /// Simulate a crash after every request and require full recovery
    /// (only meaningful with `replay = Some(Mode::Strict)`). Quadratic-ish:
    /// use on small workloads.
    pub crash_check: bool,
    /// Carry real bytes: replay into a [`DataStore`] (under the `replay`
    /// mode's rules) instead of a bare [`SimStore`], so the run's physical
    /// contents end up in [`RunResult::data`] — the byte-level reference a
    /// substrate-backed engine run is compared against. Crash checks become
    /// byte-level too ([`DataStore::crash_and_verify`]). Ignored without
    /// `replay`.
    pub bytes: bool,
}

impl RunConfig {
    /// Accounting only.
    pub fn plain() -> Self {
        RunConfig::default()
    }

    /// Replay with memmove semantics (§2 algorithms).
    pub fn relaxed() -> Self {
        RunConfig {
            replay: Some(Mode::Relaxed),
            ..RunConfig::default()
        }
    }

    /// Replay under the full database rules (§3 algorithms).
    pub fn strict() -> Self {
        RunConfig {
            replay: Some(Mode::Strict),
            ..RunConfig::default()
        }
    }

    /// Strict replay plus a crash/recovery check after every request.
    pub fn strict_with_crashes() -> Self {
        RunConfig {
            replay: Some(Mode::Strict),
            crash_check: true,
            ..RunConfig::default()
        }
    }

    /// This configuration upgraded to byte-carrying replay.
    pub fn with_bytes(mut self) -> Self {
        self.bytes = true;
        self
    }
}

/// Errors the driver can surface.
#[derive(Debug)]
pub enum RunError {
    /// The reallocator rejected a request the workload generator produced.
    Realloc(usize, realloc_common::ReallocError),
    /// The op stream violated the substrate rules.
    Substrate(usize, Violation),
    /// The substrate and the reallocator disagree about a placement.
    Divergence(usize, String),
    /// A simulated crash lost durably-mapped objects.
    DurabilityLoss(usize, Vec<realloc_common::ObjectId>),
    /// The write-ahead log could not be written
    /// ([`run_workload_with_wal`] only).
    Wal(usize, std::io::Error),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Realloc(i, e) => write!(f, "request {i}: {e}"),
            RunError::Substrate(i, v) => write!(f, "request {i}: {v}"),
            RunError::Divergence(i, d) => write!(f, "request {i}: divergence: {d}"),
            RunError::DurabilityLoss(i, ids) => {
                write!(f, "request {i}: crash would lose {} objects", ids.len())
            }
            RunError::Wal(i, e) => write!(f, "request {i}: wal: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Everything measured over one run.
pub struct RunResult {
    /// Algorithm name.
    pub name: &'static str,
    /// Per-request cost/space accounting.
    pub ledger: Ledger,
    /// Final structure size.
    pub final_structure: u64,
    /// Final live volume.
    pub final_volume: u64,
    /// `∆` observed.
    pub delta: u64,
    /// The substrate, if rule-only replay was requested. `None` on
    /// byte-carrying runs — the same state lives inside [`data`](Self::data)
    /// there; use [`rules`](Self::rules) to read either uniformly.
    pub sim: Option<SimStore>,
    /// The byte-carrying substrate, if [`RunConfig::bytes`] was set.
    pub data: Option<DataStore>,
}

impl RunResult {
    /// The rule layer of whichever substrate the run carried, if any.
    pub fn rules(&self) -> Option<&SimStore> {
        self.sim
            .as_ref()
            .or_else(|| self.data.as_ref().map(|d| d.rules()))
    }

    /// Footprint competitive ratio at the end of the run.
    pub fn final_space_ratio(&self) -> f64 {
        if self.final_volume == 0 {
            1.0
        } else {
            self.final_structure as f64 / self.final_volume as f64
        }
    }
}

/// The driver's replay target: rule-only ([`SimStore`]) or byte-carrying
/// ([`DataStore`]), so the per-request protocol below is written once.
enum Replay {
    Rules(SimStore),
    Bytes(DataStore),
}

impl Replay {
    fn new(config: &RunConfig) -> Option<Replay> {
        config.replay.map(|mode| {
            if config.bytes {
                Replay::Bytes(DataStore::new(mode))
            } else {
                Replay::Rules(SimStore::new(mode))
            }
        })
    }

    fn apply_all(&mut self, ops: &[realloc_common::StorageOp]) -> Result<(), Violation> {
        match self {
            Replay::Rules(sim) => sim.apply_all(ops),
            Replay::Bytes(data) => data.apply_all(ops),
        }
    }

    fn rules(&self) -> &SimStore {
        match self {
            Replay::Rules(sim) => sim,
            Replay::Bytes(data) => data.rules(),
        }
    }

    /// Objects a crash right now would lose: rule-level recovery for the
    /// plain store, byte-level checksum verification of every durable copy
    /// for the byte-carrying one.
    fn crash_losses(&self) -> Vec<realloc_common::ObjectId> {
        match self {
            Replay::Rules(sim) => sim.crash_and_recover().lost,
            Replay::Bytes(data) => data.crash_and_verify().corrupted,
        }
    }

    fn into_result(self) -> (Option<SimStore>, Option<DataStore>) {
        match self {
            Replay::Rules(sim) => (Some(sim), None),
            Replay::Bytes(data) => (None, Some(data)),
        }
    }
}

/// The harness's single-instance journal: one WAL, one group commit per
/// request, one closing checkpoint — the unsharded analogue of the
/// engine's per-shard durability (it writes shard 0's file names, so the
/// same readers fold either).
struct HarnessJournal {
    writer: WalWriter,
    live: HashSet<ObjectId>,
}

impl HarnessJournal {
    fn append_ops(&mut self, ops: &[StorageOp]) {
        for op in ops {
            match *op {
                StorageOp::Allocate { id, to } => self.writer.append(WalRecord::Allocate {
                    id,
                    offset: to.offset,
                    len: to.len,
                    digest: checksum(&pattern_for(id, to.len)),
                }),
                StorageOp::Move { id, from, to } => self.writer.append(WalRecord::Move {
                    id,
                    from: from.offset,
                    to: to.offset,
                    len: to.len,
                }),
                StorageOp::Free { id, at } => self.writer.append(WalRecord::Free {
                    id,
                    offset: at.offset,
                    len: at.len,
                }),
                StorageOp::CheckpointBarrier => {}
            }
        }
    }
}

/// Runs `workload` through `realloc` under `config`.
pub fn run_workload(
    realloc: &mut dyn Reallocator,
    workload: &Workload,
    config: RunConfig,
) -> Result<RunResult, RunError> {
    run_workload_inner(realloc, workload, config, None)
}

/// [`run_workload`] with durability: every request's physical ops are
/// journaled into a write-ahead log under `wal_dir` (shard 0's file names,
/// so the engine's recovery readers fold it identically) and group-
/// committed once per request; the run closes with a checkpoint of the
/// final live layout and truncates the log. A crash mid-run leaves a
/// replayable log; a completed run leaves a checkpoint that subsumes it.
pub fn run_workload_with_wal(
    realloc: &mut dyn Reallocator,
    workload: &Workload,
    config: RunConfig,
    wal_dir: &Path,
) -> Result<RunResult, RunError> {
    std::fs::create_dir_all(wal_dir).map_err(|e| RunError::Wal(0, e))?;
    let writer = WalWriter::open(&wal_path(wal_dir, 0), 0).map_err(|e| RunError::Wal(0, e))?;
    let mut journal = HarnessJournal {
        writer,
        live: HashSet::new(),
    };
    let result = run_workload_inner(realloc, workload, config, Some(&mut journal))?;
    let last = workload.len().saturating_sub(1);
    let mut entries: Vec<CheckpointEntry> = journal
        .live
        .iter()
        .filter_map(|&id| realloc.extent_of(id).map(|e| (id, e)))
        .map(|(id, e)| CheckpointEntry {
            id,
            offset: e.offset,
            len: e.len,
            digest: checksum(&pattern_for(id, e.len)),
            assigned: false,
        })
        .collect();
    entries.sort_by_key(|e| e.id);
    let epoch = journal.writer.epoch() + 1;
    write_checkpoint(&checkpoint_path(wal_dir, 0), &Checkpoint { epoch, entries })
        .and_then(|()| journal.writer.truncate_to_epoch(epoch))
        .map_err(|e| RunError::Wal(last, e))?;
    Ok(result)
}

fn run_workload_inner(
    realloc: &mut dyn Reallocator,
    workload: &Workload,
    config: RunConfig,
    mut journal: Option<&mut HarnessJournal>,
) -> Result<RunResult, RunError> {
    let mut ledger = Ledger::new();
    let mut replay = Replay::new(&config);

    for (i, req) in workload.requests.iter().enumerate() {
        let (kind, request_size, allocated, outcome) = match *req {
            Request::Insert { id, size } => {
                let out = realloc
                    .insert(id, size)
                    .map_err(|e| RunError::Realloc(i, e))?;
                (OpKind::Insert, size, Some(size), out)
            }
            Request::Delete { id } => {
                let size = realloc.extent_of(id).map_or(0, |e| e.len);
                let out = realloc.delete(id).map_err(|e| RunError::Realloc(i, e))?;
                (OpKind::Delete, size, None, out)
            }
        };

        if let Some(journal) = journal.as_deref_mut() {
            match *req {
                Request::Insert { id, .. } => {
                    journal.live.insert(id);
                }
                Request::Delete { id } => {
                    journal.live.remove(&id);
                }
            }
            journal.append_ops(&outcome.ops);
            // One group commit per request: the request's whole op group
            // (the allocate/delete plus any flush moves it triggered)
            // becomes durable in a single frame.
            journal.writer.commit().map_err(|e| RunError::Wal(i, e))?;
        }

        if let Some(replay) = replay.as_mut() {
            replay
                .apply_all(&outcome.ops)
                .map_err(|v| RunError::Substrate(i, v))?;
            replay
                .rules()
                .verify_matches(|id| realloc.extent_of(id))
                .map_err(|d| RunError::Divergence(i, d))?;
            if config.crash_check {
                let lost = replay.crash_losses();
                if !lost.is_empty() {
                    return Err(RunError::DurabilityLoss(i, lost));
                }
            }
        }

        ledger.record(
            kind,
            request_size,
            allocated,
            &outcome,
            realloc.structure_size(),
            realloc.live_volume(),
            realloc.max_object_size(),
        );
    }

    let (sim, data) = replay.map(Replay::into_result).unwrap_or((None, None));
    Ok(RunResult {
        name: realloc.name(),
        ledger,
        final_structure: realloc.structure_size(),
        final_volume: realloc.live_volume(),
        delta: realloc.max_object_size(),
        sim,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::{CheckpointedReallocator, CostObliviousReallocator};
    use workload_gen::churn::{churn, ChurnConfig};
    use workload_gen::dist::SizeDist;

    fn small_churn(seed: u64) -> Workload {
        churn(&ChurnConfig {
            dist: SizeDist::Uniform { lo: 1, hi: 64 },
            target_volume: 2_000,
            churn_ops: 500,
            seed,
        })
    }

    #[test]
    fn amortized_replays_relaxed() {
        let w = small_churn(1);
        let mut r = CostObliviousReallocator::new(0.5);
        let result = run_workload(&mut r, &w, RunConfig::relaxed()).unwrap();
        assert!(result.ledger.len() == w.len());
        assert!(result.final_space_ratio() <= 1.5 + 1e-9);
    }

    #[test]
    fn checkpointed_replays_strict_with_crashes() {
        let w = small_churn(2);
        let mut r = CheckpointedReallocator::new(0.5);
        let result = run_workload(&mut r, &w, RunConfig::strict_with_crashes()).unwrap();
        let sim = result.sim.unwrap();
        assert!(sim.checkpoints() > 0, "flushes must have checkpointed");
    }

    #[test]
    fn amortized_under_strict_rules_fails() {
        // Negative control: the §2 algorithm violates the database rules
        // (overlapping compaction moves / freed-space reuse), which is the
        // entire reason §3 exists.
        let w = small_churn(3);
        let mut r = CostObliviousReallocator::new(0.5);
        let err = run_workload(&mut r, &w, RunConfig::strict());
        assert!(
            matches!(err, Err(RunError::Substrate(..))),
            "expected a rules violation"
        );
    }

    #[test]
    fn byte_replay_carries_data_and_verifies() {
        let w = small_churn(5);
        let mut r = CheckpointedReallocator::new(0.5);
        let result =
            run_workload(&mut r, &w, RunConfig::strict_with_crashes().with_bytes()).unwrap();
        let data = result.data.as_ref().unwrap();
        data.verify_all().unwrap();
        assert!(result.sim.is_none(), "no redundant rule-store copy");
        assert!(result.rules().is_some(), "rules view still exposed");
        // Every live object's bytes are its deterministic pattern.
        for (ext, id) in data.rules().live_spans() {
            assert_eq!(
                data.bytes_of(id).unwrap(),
                &storage_sim::pattern_for(id, ext.len)[..]
            );
        }
    }

    #[test]
    fn plain_run_has_no_sim() {
        let w = small_churn(4);
        let mut r = CostObliviousReallocator::new(0.25);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        assert!(result.sim.is_none());
    }

    #[test]
    fn walled_run_checkpoints_its_final_live_set() {
        let dir = std::env::temp_dir().join(format!(
            "realloc-harness-wal-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let w = small_churn(6);
        let mut r = CostObliviousReallocator::new(0.5);
        run_workload_with_wal(&mut r, &w, RunConfig::plain(), &dir).unwrap();

        // The closing checkpoint holds exactly the reallocator's final
        // live layout, every digest regenerates, and the log it subsumes
        // was truncated (no frame at or past the checkpoint's epoch).
        let ckpt = storage_sim::read_checkpoint(&checkpoint_path(&dir, 0))
            .unwrap()
            .expect("run must have checkpointed");
        assert_eq!(ckpt.entries.len(), r.live_count());
        let mut volume = 0;
        for e in &ckpt.entries {
            assert_eq!(
                r.extent_of(e.id),
                Some(realloc_common::Extent::new(e.offset, e.len))
            );
            assert_eq!(e.digest, checksum(&pattern_for(e.id, e.len)));
            volume += e.len;
        }
        assert_eq!(volume, r.live_volume());
        let groups = storage_sim::read_wal(&wal_path(&dir, 0)).unwrap();
        assert!(
            groups.iter().all(|g| g.epoch < ckpt.epoch),
            "checkpoint must have truncated the log"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn walled_run_log_folds_to_the_live_set_before_checkpoint() {
        // Fold the *log itself* (as a crash before the closing checkpoint
        // would see it): journal a run, then replay its frames and compare
        // the folded live set against the reallocator. To observe the log
        // pre-truncation, drive requests through the journal path manually
        // via a second run whose workload is a prefix — simpler: re-run
        // and read the log after disabling truncation is not possible, so
        // instead verify fold(checkpoint ∪ suffix) ≡ fold(checkpoint)
        // here and leave torn-log folding to the engine recovery suites.
        let dir = std::env::temp_dir().join(format!(
            "realloc-harness-wal-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let w = small_churn(7);
        let mut r = CostObliviousReallocator::new(0.5);
        run_workload_with_wal(&mut r, &w, RunConfig::plain(), &dir).unwrap();
        let ckpt = storage_sim::read_checkpoint(&checkpoint_path(&dir, 0))
            .unwrap()
            .unwrap();
        let mut folded: std::collections::BTreeMap<ObjectId, u64> =
            ckpt.entries.iter().map(|e| (e.id, e.len)).collect();
        for group in storage_sim::read_wal(&wal_path(&dir, 0)).unwrap() {
            if group.epoch < ckpt.epoch {
                continue;
            }
            for rec in group.records {
                match rec {
                    WalRecord::Allocate { id, len, .. } => {
                        folded.insert(id, len);
                    }
                    WalRecord::Free { id, .. } => {
                        folded.remove(&id);
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(folded.len(), r.live_count());
        assert_eq!(folded.values().sum::<u64>(), r.live_volume());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
