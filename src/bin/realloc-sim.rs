//! `realloc-sim` — run a (re)allocation workload against any algorithm in
//! the repository and print a full report: footprint competitiveness,
//! per-medium cost ratios, worst-case behaviour, and (optionally) database
//! rule checking with crash recovery.
//!
//! ```text
//! realloc-sim <algorithm> [options]
//!
//! algorithms: cost-oblivious | checkpointed | deamortized |
//!             first-fit | best-fit | next-fit | buddy |
//!             log-compact | size-class-gaps
//!
//! options:
//!   --eps <f>            footprint slack for the paper's algorithms (default 0.25)
//!   --trace <file>       replay a trace file ("I <id> <size>" / "D <id>" lines)
//!   --churn <vol> <ops>  synthetic churn workload (default 50000 20000)
//!   --seed <n>           workload seed (default 42)
//!   --strict             replay ops under the database rules (§3 algorithms)
//!   --relaxed            replay ops with memmove semantics (§2 algorithm)
//!   --crash-check        simulate a crash after every request (with --strict)
//! ```

use std::process::ExitCode;

use storage_realloc::prelude::*;

fn make_algorithm(name: &str, eps: f64) -> Option<Box<dyn Reallocator>> {
    Some(match name {
        "cost-oblivious" => Box::new(CostObliviousReallocator::new(eps)),
        "checkpointed" => Box::new(CheckpointedReallocator::new(eps)),
        "deamortized" => Box::new(DeamortizedReallocator::new(eps)),
        "first-fit" => Box::new(FreeListAllocator::new(FitStrategy::FirstFit)),
        "best-fit" => Box::new(FreeListAllocator::new(FitStrategy::BestFit)),
        "next-fit" => Box::new(FreeListAllocator::new(FitStrategy::NextFit)),
        "buddy" => Box::new(BuddyAllocator::new()),
        "log-compact" => Box::new(LogCompactAllocator::new()),
        "size-class-gaps" => Box::new(SizeClassGapsAllocator::new()),
        _ => return None,
    })
}

struct Args {
    algorithm: String,
    eps: f64,
    trace: Option<String>,
    churn: (u64, usize),
    seed: u64,
    config: RunConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let algorithm = argv.next().ok_or("missing <algorithm>")?;
    let mut args = Args {
        algorithm,
        eps: 0.25,
        trace: None,
        churn: (50_000, 20_000),
        seed: 42,
        config: RunConfig::plain(),
    };
    let mut crash = false;
    while let Some(flag) = argv.next() {
        let mut next = |what: &str| argv.next().ok_or(format!("{flag} needs {what}"));
        match flag.as_str() {
            "--eps" => args.eps = next("a value")?.parse().map_err(|e| format!("--eps: {e}"))?,
            "--trace" => args.trace = Some(next("a file")?),
            "--churn" => {
                args.churn.0 = next("a volume")?.parse().map_err(|e| format!("--churn: {e}"))?;
                args.churn.1 = next("an op count")?.parse().map_err(|e| format!("--churn: {e}"))?;
            }
            "--seed" => args.seed = next("a value")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--strict" => args.config.replay = Some(Mode::Strict),
            "--relaxed" => args.config.replay = Some(Mode::Relaxed),
            "--crash-check" => crash = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if crash {
        if args.config.replay != Some(Mode::Strict) {
            return Err("--crash-check requires --strict".into());
        }
        args.config.crash_check = true;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: realloc-sim <algorithm> [--eps f] [--trace file | --churn vol ops] [--seed n] [--strict|--relaxed] [--crash-check]");
            return ExitCode::FAILURE;
        }
    };

    let workload = match &args.trace {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match storage_realloc::workloads::file::from_text(&text) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => storage_realloc::workloads::churn::churn(
            &storage_realloc::workloads::churn::ChurnConfig {
                dist: storage_realloc::workloads::dist::SizeDist::ClassPowerLaw {
                    classes: 10,
                    decay: 0.7,
                },
                target_volume: args.churn.0,
                churn_ops: args.churn.1,
                seed: args.seed,
            },
        ),
    };

    let Some(mut algorithm) = make_algorithm(&args.algorithm, args.eps) else {
        eprintln!("error: unknown algorithm {:?}", args.algorithm);
        return ExitCode::FAILURE;
    };

    println!("workload:  {} ({} requests)", workload.name, workload.len());
    println!("algorithm: {} (ε = {})", algorithm.name(), args.eps);

    let result = match run_workload(algorithm.as_mut(), &workload, args.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ledger = &result.ledger;
    println!("\n-- space --");
    println!("final volume V:        {}", result.final_volume);
    println!("final structure:       {}", result.final_structure);
    println!("max settled ratio:     {:.4}", ledger.max_settled_space_ratio());
    println!("∆ (largest object):    {}", result.delta);

    println!("\n-- movement --");
    println!("total reallocations:   {}", ledger.total_moves());
    println!("total moved volume:    {}", ledger.total_moved_volume());
    println!("worst single request:  {} cells moved", ledger.max_op_moved_volume());
    println!("checkpoint barriers:   {}", ledger.total_checkpoints());

    println!("\n-- cost competitiveness (reallocation / allocation cost) --");
    for f in storage_realloc::cost::standard_suite() {
        println!("  {:>12}: {:.3}", f.name(), ledger.cost_ratio(&|w| f.cost(w)));
    }

    if let Some(sim) = &result.sim {
        println!("\n-- substrate --");
        println!("mode:                  {:?}", sim.mode());
        println!("ops replayed:          {}", sim.ops_applied());
        println!("checkpoints:           {}", sim.checkpoints());
        println!("rule violations:       0 (run would have failed otherwise)");
        if args.config.crash_check {
            println!("crash recovery:        verified after every request");
        }
    }
    ExitCode::SUCCESS
}
