//! `realloc-sim` — run a (re)allocation workload against any algorithm in
//! the repository and print a full report: footprint competitiveness,
//! per-medium cost ratios, worst-case behaviour, and (optionally) database
//! rule checking with crash recovery.
//!
//! ```text
//! realloc-sim <algorithm> [options]
//!
//! algorithms: cost-oblivious | checkpointed | deamortized |
//!             nearly-quadratic | first-fit | best-fit | next-fit | buddy |
//!             log-compact | size-class-gaps
//!
//! options:
//!   --eps <f>            footprint slack for the paper's algorithms (default 0.25)
//!   --trace <file>       replay a trace file ("I <id> <size>" / "D <id>" lines)
//!   --churn <vol> <ops>  synthetic churn workload (default 50000 20000)
//!   --seed <n>           workload seed (default 42)
//!   --strict             replay ops under the database rules (§3 algorithms)
//!   --relaxed            replay ops with memmove semantics (§2 algorithm)
//!   --crash-check        simulate a crash after every request (with --strict)
//!
//! realloc-sim engine [options]
//!
//! Serve the workload through the sharded multi-threaded engine and print
//! a per-shard stats table plus the aggregate row.
//!
//! options:
//!   --variant <alg>      any algorithm name above (default cost-oblivious)
//!   --shards <n>         shard count (default 4)
//!   --batch <n>          requests per channel batch (default 256)
//!   --coalesce           plan each channel batch before applying it:
//!                        delete+reinsert of an id folds to one resize,
//!                        insert-then-delete cancels outright, repeated
//!                        resizes collapse to the last size. The stats
//!                        table grows coalesced/cancelled columns and the
//!                        telemetry table reports raw vs planned batch
//!                        sizes (acks and ledgers stay per-request)
//!   --router <kind>      hash (default) or table (id → shard map with a
//!                        rendezvous fallback; enables rebalancing)
//!   --rebalance-every <n>  rebalance after every n requests (table router).
//!                        Barrier mode by default: the whole fleet quiesces
//!                        and the full migration plan executes in one stall.
//!                        Add --online to migrate in bounded batches
//!                        interleaved with serving instead.
//!   --online             make each --rebalance-every rebalance an online
//!                        (incremental) session rather than a quiesce barrier
//!   --auto-rebalance     install the driver-side policy instead of a fixed
//!                        cadence: observe imbalance every chunk and fire an
//!                        online rebalance after k consecutive observations
//!                        above τ, with post-rebalance hysteresis
//!   --tau <f>            auto-rebalance trigger threshold τ (default 1.5)
//!   --policy-k <n>       consecutive breaches required (default 3)
//!   --hysteresis <n>     observations ignored after a rebalance (default 2)
//!   --resize <n>         resize to n shards at the workload's midpoint
//!   --defrag             run the per-shard Thm 2.7 defrag with each rebalance
//!   --substrate [rules]  back every shard with a byte-carrying store over its
//!                        own disjoint address window: physical ops replayed,
//!                        migrations ship checksummed bytes, extents + bytes
//!                        verified. rules: relaxed (default; any variant) or
//!                        strict (§3.1 database rules; checkpointed,
//!                        deamortized, or nearly-quadratic only — §2
//!                        legitimately violates them)
//!   --wal-dir <dir>      durability: every shard journals each physical op
//!                        and route flip to its own write-ahead log under
//!                        <dir>, group-committing once per served batch;
//!                        quiesce barriers checkpoint the live layout and
//!                        truncate the log. Needs --router table (recovery
//!                        re-derives the id → shard table from ownership)
//!   --crash-after <n>    with --wal-dir: simulate kill -9 after n requests,
//!                        rebuild the fleet with Engine::recover, print the
//!                        recovery report, and keep serving the rest of the
//!                        workload on the recovered fleet
//!   --metrics            print the observability report after the run: a
//!                        per-shard telemetry table (batch-service and
//!                        commit-latency percentiles, group-commit
//!                        coalescing, intake stalls, simulated device time)
//!                        and the structural event tail
//!   --metrics-json       emit ONLY the metrics snapshot as JSON on stdout
//!                        (the normal report is suppressed so the output
//!                        pipes clean into a parser); schema documented on
//!                        MetricsSnapshot::to_json
//!   --device <profile>   price every shard's physical op stream against a
//!                        simulated device: unit (1 µs/op), disk (seek-
//!                        dominated rotating disk), ssd (erase-block flash).
//!                        Sim time is deterministic — same workload, same
//!                        sim time — unlike the wall-clock histograms
//!   --verify-cadence <c> when each shard runs its full O(V) extent + byte
//!                        scan (per-write rule checks are always on):
//!                          final   — once, before shutdown: cheapest, but a
//!                                    divergence is only localized to "the run"
//!                          quiesce — every quiesce/snapshot barrier (default):
//!                                    one scan per shard per barrier, hidden in
//!                                    the barrier's existing fleet-wide stall
//!                          batch   — every served channel batch: one scan per
//!                                    shard per ~256 requests — orders of
//!                                    magnitude more scans, for debugging only
//!   --async              host each tenant as its own lightweight engine on a
//!                        shared worker pool (the async facade) instead of one
//!                        sharded sync engine; --shards sizes the pool, and
//!                        requests route to tenant id mod --tenants. Serving
//!                        options that assume the single sync fleet (routers,
//!                        rebalancing, resize, WAL, metrics output, device
//!                        pricing) do not combine with it
//!   --tenants <n>        with --async: tenants to register (default 8)
//!   --steal              with --async: let idle pool workers steal queued
//!                        batches from a stuck home worker; the run reports
//!                        batches stolen, conflicts, and steal-wait quantiles
//!   --eps / --trace / --churn / --seed   as above
//!
//! Every rebalance line printed by the engine run reports whether it ran in
//! barrier or online mode. With --substrate, the stats table grows three
//! physical-I/O columns (bytes w / bytes in / bytes out) and a substrate
//! section prints each shard's window and byte-verification result; any
//! rule violation or failed verification aborts the run with the shard and
//! the violating write named.
//! ```

use std::process::ExitCode;

use realloc_bench::{fmt2, fmt_u64, Table};
use storage_realloc::prelude::*;

fn make_algorithm(name: &str, eps: f64) -> Option<Box<dyn Reallocator + Send>> {
    // Paper variants resolve through the shared registry; baselines here.
    if let Some(r) = build_variant(name, eps) {
        return Some(r);
    }
    Some(match name {
        "first-fit" => Box::new(FreeListAllocator::new(FitStrategy::FirstFit)),
        "best-fit" => Box::new(FreeListAllocator::new(FitStrategy::BestFit)),
        "next-fit" => Box::new(FreeListAllocator::new(FitStrategy::NextFit)),
        "buddy" => Box::new(BuddyAllocator::new()),
        "log-compact" => Box::new(LogCompactAllocator::new()),
        "size-class-gaps" => Box::new(SizeClassGapsAllocator::new()),
        _ => return None,
    })
}

struct Args {
    algorithm: String,
    eps: f64,
    trace: Option<String>,
    churn: (u64, usize),
    seed: u64,
    config: RunConfig,
    // Engine-mode options (`realloc-sim engine`).
    variant: String,
    shards: usize,
    batch: usize,
    coalesce: bool,
    router: String,
    rebalance_every: Option<usize>,
    online: bool,
    auto_rebalance: bool,
    tau: f64,
    policy_k: usize,
    hysteresis: usize,
    resize: Option<usize>,
    defrag: bool,
    substrate: Option<Mode>,
    cadence: Option<VerifyCadence>,
    wal_dir: Option<String>,
    crash_after: Option<usize>,
    metrics: bool,
    metrics_json: bool,
    device: Option<DeviceProfile>,
    async_mode: bool,
    tenants: Option<usize>,
    steal: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1).peekable();
    let algorithm = argv.next().ok_or("missing <algorithm>")?;
    let mut args = Args {
        algorithm,
        eps: 0.25,
        trace: None,
        churn: (50_000, 20_000),
        seed: 42,
        config: RunConfig::plain(),
        variant: "cost-oblivious".into(),
        shards: 4,
        batch: 256,
        coalesce: false,
        router: "hash".into(),
        rebalance_every: None,
        online: false,
        auto_rebalance: false,
        tau: 1.5,
        policy_k: 3,
        hysteresis: 2,
        resize: None,
        defrag: false,
        substrate: None,
        cadence: None,
        wal_dir: None,
        crash_after: None,
        metrics: false,
        metrics_json: false,
        device: None,
        async_mode: false,
        tenants: None,
        steal: false,
    };
    let engine_mode = args.algorithm == "engine";
    let mut crash = false;
    while let Some(flag) = argv.next() {
        let mut next = |what: &str| argv.next().ok_or(format!("{flag} needs {what}"));
        match flag.as_str() {
            "--eps" => {
                args.eps = next("a value")?
                    .parse()
                    .map_err(|e| format!("--eps: {e}"))?
            }
            "--trace" => args.trace = Some(next("a file")?),
            "--churn" => {
                args.churn.0 = next("a volume")?
                    .parse()
                    .map_err(|e| format!("--churn: {e}"))?;
                args.churn.1 = next("an op count")?
                    .parse()
                    .map_err(|e| format!("--churn: {e}"))?;
            }
            "--seed" => {
                args.seed = next("a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--strict" if !engine_mode => args.config.replay = Some(Mode::Strict),
            "--relaxed" if !engine_mode => args.config.replay = Some(Mode::Relaxed),
            "--crash-check" if !engine_mode => crash = true,
            "--variant" if engine_mode => args.variant = next("an algorithm")?,
            "--shards" if engine_mode => {
                args.shards = next("a count")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be positive".into());
                }
            }
            "--batch" if engine_mode => {
                args.batch = next("a size")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if args.batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--coalesce" if engine_mode => args.coalesce = true,
            "--router" if engine_mode => {
                args.router = next("hash or table")?;
                if args.router != "hash" && args.router != "table" {
                    return Err(format!("--router: unknown kind {:?}", args.router));
                }
            }
            "--rebalance-every" if engine_mode => {
                let n: usize = next("a request count")?
                    .parse()
                    .map_err(|e| format!("--rebalance-every: {e}"))?;
                if n == 0 {
                    return Err("--rebalance-every must be positive".into());
                }
                args.rebalance_every = Some(n);
            }
            "--online" if engine_mode => args.online = true,
            "--auto-rebalance" if engine_mode => args.auto_rebalance = true,
            "--tau" if engine_mode => {
                args.tau = next("a threshold")?
                    .parse()
                    .map_err(|e| format!("--tau: {e}"))?;
                if args.tau <= 1.0 {
                    return Err("--tau must exceed 1.0 (perfect balance)".into());
                }
            }
            "--policy-k" if engine_mode => {
                args.policy_k = next("a count")?
                    .parse()
                    .map_err(|e| format!("--policy-k: {e}"))?;
                if args.policy_k == 0 {
                    return Err("--policy-k must be positive".into());
                }
            }
            "--hysteresis" if engine_mode => {
                args.hysteresis = next("a count")?
                    .parse()
                    .map_err(|e| format!("--hysteresis: {e}"))?;
            }
            "--resize" if engine_mode => {
                let n: usize = next("a shard count")?
                    .parse()
                    .map_err(|e| format!("--resize: {e}"))?;
                if n == 0 {
                    return Err("--resize must be positive".into());
                }
                args.resize = Some(n);
            }
            "--defrag" if engine_mode => args.defrag = true,
            "--substrate" if engine_mode => {
                // Optional rule-mode value: `--substrate [relaxed|strict]`.
                args.substrate = Some(match argv.peek().map(String::as_str) {
                    Some("strict") => {
                        argv.next();
                        Mode::Strict
                    }
                    Some("relaxed") => {
                        argv.next();
                        Mode::Relaxed
                    }
                    _ => Mode::Relaxed,
                });
            }
            "--wal-dir" if engine_mode => args.wal_dir = Some(next("a directory")?),
            "--crash-after" if engine_mode => {
                let n: usize = next("a request count")?
                    .parse()
                    .map_err(|e| format!("--crash-after: {e}"))?;
                if n == 0 {
                    return Err("--crash-after must be positive".into());
                }
                args.crash_after = Some(n);
            }
            "--async" if engine_mode => args.async_mode = true,
            "--tenants" if engine_mode => {
                let n: usize = next("a count")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
                if n == 0 {
                    return Err("--tenants must be positive".into());
                }
                args.tenants = Some(n);
            }
            "--steal" if engine_mode => args.steal = true,
            "--metrics" if engine_mode => args.metrics = true,
            "--metrics-json" if engine_mode => args.metrics_json = true,
            "--device" if engine_mode => {
                let name = next("unit, disk or ssd")?;
                args.device = Some(
                    DeviceProfile::parse(&name)
                        .ok_or(format!("--device: unknown profile {name:?}"))?,
                );
            }
            "--verify-cadence" if engine_mode => {
                args.cadence = Some(match next("final, quiesce or batch")?.as_str() {
                    "final" => VerifyCadence::Final,
                    "quiesce" => VerifyCadence::Quiesce,
                    "batch" => VerifyCadence::Batch,
                    other => return Err(format!("--verify-cadence: unknown cadence {other:?}")),
                });
            }
            other => {
                return Err(format!(
                    "unknown option {other} (or not valid {} engine mode)",
                    if engine_mode { "in" } else { "outside" }
                ))
            }
        }
    }
    if crash {
        if args.config.replay != Some(Mode::Strict) {
            return Err("--crash-check requires --strict".into());
        }
        args.config.crash_check = true;
    }
    if args.rebalance_every.is_some() && args.router != "table" {
        return Err("--rebalance-every needs --router table (the hash map is frozen)".into());
    }
    if args.auto_rebalance && args.router != "table" {
        return Err("--auto-rebalance needs --router table (the hash map is frozen)".into());
    }
    if args.auto_rebalance && args.rebalance_every.is_some() {
        return Err("--auto-rebalance replaces the fixed --rebalance-every cadence".into());
    }
    if args.online && args.rebalance_every.is_none() {
        return Err("--online modifies --rebalance-every (auto-rebalance is always online)".into());
    }
    if args.defrag && args.rebalance_every.is_none() && !args.auto_rebalance {
        return Err("--defrag needs --rebalance-every or --auto-rebalance".into());
    }
    if args.wal_dir.is_some() && args.router != "table" {
        return Err(
            "--wal-dir needs --router table (recovery re-derives the id → shard \
             table from physical ownership)"
                .into(),
        );
    }
    if args.crash_after.is_some() && args.wal_dir.is_none() {
        return Err(
            "--crash-after needs --wal-dir (a crash without logs is just data loss)".into(),
        );
    }
    if args.crash_after.is_some() && args.resize.is_some() {
        return Err(
            "--crash-after cannot be combined with --resize (recovery needs the \
             shard count that wrote the logs)"
                .into(),
        );
    }
    if args.cadence.is_some() && args.substrate.is_none() {
        return Err(
            "--verify-cadence modifies --substrate (without a substrate there is nothing to verify)"
                .into(),
        );
    }
    if (args.steal || args.tenants.is_some()) && !args.async_mode {
        return Err("--steal and --tenants modify --async (the sync engine has no fleet)".into());
    }
    if args.async_mode {
        // The async facade hosts many single-tenant engines on a shared
        // pool; everything that assumes the one sync fleet stays sync-only.
        let conflicts: [(bool, &str); 7] = [
            (args.router != "hash", "--router"),
            (
                args.rebalance_every.is_some() || args.auto_rebalance,
                "--rebalance-every/--auto-rebalance",
            ),
            (args.resize.is_some(), "--resize"),
            (args.wal_dir.is_some(), "--wal-dir"),
            (
                args.metrics || args.metrics_json,
                "--metrics/--metrics-json",
            ),
            (args.device.is_some(), "--device"),
            (args.defrag, "--defrag"),
        ];
        for (set, name) in conflicts {
            if set {
                return Err(format!(
                    "{name} drives the single sync fleet and does not combine with --async"
                ));
            }
        }
    }
    if args.substrate == Some(Mode::Strict) && !variant_is_strict_safe(&args.variant) {
        return Err(
            "--substrate strict needs --variant checkpointed, deamortized, or \
             nearly-quadratic (the §2 algorithm and the baselines legitimately \
             violate the database rules — that is why §3 exists)"
                .into(),
        );
    }
    Ok(args)
}

fn print_rebalance(served: usize, report: &RebalanceReport) {
    println!(
        "rebalance @{served:>8} ({} mode, {} batch{}): imbalance {:.2} -> {:.2}, \
         {} objects / {} cells migrated{}",
        report.mode,
        report.batches,
        if report.batches == 1 { "" } else { "es" },
        report.before.imbalance_ratio(),
        report.after.imbalance_ratio(),
        report.migrated_objects,
        report.migrated_volume,
        if report.defrag.is_empty() {
            String::new()
        } else {
            format!(
                ", defrag {} moves",
                report.defrag.iter().map(|d| d.total_moves).sum::<u64>()
            )
        }
    );
}

/// The `--metrics` human report: one telemetry row per shard (latency and
/// commit distributions, intake stalls, sim-time lanes) plus the journal's
/// structural event tail.
fn print_metrics(snapshot: &MetricsSnapshot) {
    let device = snapshot
        .device
        .map_or("none (wall clock + counts only)", DeviceProfile::name);
    println!(
        "\n-- observability (scrape #{}, device: {device}) --",
        snapshot.scrape
    );
    let mut table = Table::new(
        "per-shard telemetry",
        &[
            "shard",
            "svc p50 µs",
            "svc p99 µs",
            "commit recs μ",
            "commit p99 µs",
            "raw batch μ",
            "plan batch μ",
            "stalls",
            "serve sim µs",
            "migr sim µs",
            "commit sim µs",
        ],
    );
    for m in &snapshot.per_shard {
        table.row(vec![
            m.shard.to_string(),
            fmt2(m.batch_service_ns.p50() / 1_000.0),
            fmt2(m.batch_service_ns.p99() / 1_000.0),
            fmt2(m.commit_records.mean()),
            fmt2(m.commit_latency_ns.p99() / 1_000.0),
            fmt2(m.batch_raw_requests.mean()),
            fmt2(m.batch_planned_requests.mean()),
            fmt_u64(m.intake_stall_ns.count),
            fmt2(m.serve_sim_us),
            fmt2(m.migrate_sim_us),
            fmt2(m.wal_commit_sim_us),
        ]);
    }
    table.print();
    if snapshot.device.is_some() {
        println!(
            "sim time: {:.0} µs total (serve {:.0} + migrate {:.0} + wal commit {:.0})",
            snapshot.sim_time_us(),
            snapshot
                .per_shard
                .iter()
                .map(|m| m.serve_sim_us)
                .sum::<f64>(),
            snapshot
                .per_shard
                .iter()
                .map(|m| m.migrate_sim_us)
                .sum::<f64>(),
            snapshot
                .per_shard
                .iter()
                .map(|m| m.wal_commit_sim_us)
                .sum::<f64>(),
        );
    }
    let stalls = snapshot.intake_stall_ns();
    if stalls.count > 0 {
        println!(
            "backpressure: {} stalled sends, p99 {:.0} µs",
            stalls.count,
            stalls.p99() / 1_000.0
        );
    }
    if !snapshot.events.is_empty() {
        println!(
            "events: {} retained ({} dropped); last:",
            snapshot.events.len(),
            snapshot.events_dropped
        );
        for e in snapshot.events.iter().rev().take(5).rev() {
            println!(
                "  #{:<4} +{:>9} µs  {:<20} {:<7} payload {}",
                e.seq,
                e.at_us,
                e.label,
                e.phase.name(),
                e.payload
            );
        }
    }
}

/// Everything `serve_span` needs besides the engine and the requests.
struct ServePlan<'a> {
    args: &'a Args,
    chunk_size: usize,
    midpoint: usize,
    rebalance_opts: RebalanceOptions,
}

/// Serves one contiguous span of the workload, firing the configured
/// rebalance cadence (fixed, online, or policy-driven) and the midpoint
/// resize along the way. `served`/`resized` persist across spans so a
/// crash-and-recover run keeps its cadence bookkeeping.
fn serve_span(
    engine: &mut Engine,
    requests: &[Request],
    plan: &ServePlan,
    served: &mut usize,
    resized: &mut bool,
) -> Result<(), EngineError> {
    let args = plan.args;
    // --metrics-json promises machine-readable stdout: everything the run
    // would normally narrate is suppressed so the output pipes clean.
    let quiet = args.metrics_json;
    for chunk in requests.chunks(plan.chunk_size.max(1)) {
        engine.drive(&Workload::new("chunk", chunk.to_vec()))?;
        *served += chunk.len();
        if args.auto_rebalance {
            let was_active = engine.rebalance_active();
            engine.snapshot()?; // the policy observes at this barrier
            if !was_active && engine.rebalance_active() && !quiet {
                println!("policy    @{:>8}: fired, online session started", *served);
            }
        } else if args.rebalance_every.is_some() {
            if args.online {
                if !engine.rebalance_active() {
                    engine.rebalance_online(plan.rebalance_opts)?;
                }
            } else {
                let report = engine.rebalance(plan.rebalance_opts)?;
                if !quiet {
                    print_rebalance(*served, &report);
                }
            }
        }
        // Online sessions (fixed-cadence or policy-fired) complete
        // inside serving calls; their reports are claimed here.
        if let Some(report) = engine.take_rebalance_report() {
            if !quiet {
                print_rebalance(*served, &report);
            }
        }
        if !*resized && *served >= plan.midpoint {
            *resized = true;
            let to = args.resize.expect("checked");
            let factory = |_shard: usize| {
                make_algorithm(&args.variant, args.eps).expect("variant validated above")
            };
            let report = engine.resize_shards(to, factory)?;
            if !quiet {
                println!(
                    "resize    @{:>8}: {} -> {} shards, {} objects / {} cells migrated",
                    *served,
                    report.from,
                    report.to,
                    report.migrated_objects,
                    report.migrated_volume
                );
            }
            if let Some(report) = engine.take_rebalance_report() {
                if !quiet {
                    print_rebalance(*served, &report);
                }
            }
        }
    }
    Ok(())
}

/// Drives the whole workload: serve, optionally crash at `--crash-after`
/// and recover from the write-ahead logs, keep serving, then drain any
/// open rebalance session and quiesce. Returns the (possibly recovered)
/// engine for the final stats pass.
fn drive_workload(
    mut engine: Engine,
    workload: &Workload,
    config: EngineConfig,
    plan: &ServePlan,
) -> Result<Engine, EngineError> {
    let args = plan.args;
    let quiet = args.metrics_json;
    let mut served = 0usize;
    let mut resized = args.resize.is_none();
    let crash_at = args.crash_after.map(|n| n.min(workload.len()));
    let (head, tail) = workload
        .requests
        .split_at(crash_at.unwrap_or(workload.len()));
    serve_span(&mut engine, head, plan, &mut served, &mut resized)?;
    if crash_at.is_some() {
        let dir = args
            .wal_dir
            .as_ref()
            .expect("--crash-after implies --wal-dir");
        engine.crash();
        if !quiet {
            println!("crash     @{served:>8}: simulated kill -9, recovering from {dir}");
        }
        let factory = |_shard: usize| {
            make_algorithm(&args.variant, args.eps).expect("variant validated above")
        };
        let (rebuilt, report) = Engine::recover(config, dir, factory)?;
        engine = rebuilt;
        if !quiet {
            println!(
                "recovered @{served:>8}: {} objects / {} cells ({} from checkpoints, \
                 {} records replayed in {} groups); {} resurrected, {} duplicates \
                 dropped, {} route assignments",
                report.objects,
                report.volume,
                report.checkpoint_objects,
                report.replayed_records,
                report.replayed_groups,
                report.resurrected.len(),
                report.dropped_duplicates.len(),
                report.route_assignments,
            );
        }
        if args.auto_rebalance {
            // The policy lives in the crashed driver; reinstall it on the
            // recovered fleet.
            engine.set_auto_rebalance(
                RebalancePolicy::new(args.tau, args.policy_k, args.hysteresis),
                plan.rebalance_opts,
            );
        }
        serve_span(&mut engine, tail, plan, &mut served, &mut resized)?;
    }
    // Don't let the policy fire into the closing barriers; drain any
    // session that is still migrating.
    engine.clear_auto_rebalance();
    while engine.rebalance_step()? {}
    if let Some(report) = engine.take_rebalance_report() {
        if !quiet {
            print_rebalance(workload.len(), &report);
        }
    }
    engine.quiesce()?;
    Ok(engine)
}

/// `realloc-sim engine`: serve the workload through the sharded engine
/// (optionally rebalancing, resizing, and/or crash-recovering along the
/// way) and print the per-shard stats table, the aggregate row, and cost
/// ratios priced over the union of the shard ledgers.
fn run_engine(args: &Args, workload: &Workload) -> ExitCode {
    if make_algorithm(&args.variant, args.eps).is_none() {
        eprintln!("error: unknown engine variant {:?}", args.variant);
        return ExitCode::FAILURE;
    }
    let quiet = args.metrics_json;

    let substrate = args.substrate.map(|mode| SubstrateConfig {
        mode,
        verify: args.cadence.unwrap_or_default(),
        ..SubstrateConfig::default()
    });
    let config = EngineConfig {
        shards: args.shards,
        batch: args.batch,
        coalesce: args.coalesce,
        substrate,
        device: args.device,
        ..Default::default()
    };
    let factory =
        |_shard: usize| make_algorithm(&args.variant, args.eps).expect("variant validated above");
    let mut engine = if let Some(dir) = &args.wal_dir {
        match Engine::with_wal(
            config,
            Box::new(TableRouter::new(args.shards)),
            factory,
            dir,
        ) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("error: cannot open write-ahead logs under {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match args.router.as_str() {
            "table" => {
                Engine::with_router(config, Box::new(TableRouter::new(args.shards)), factory)
            }
            _ => Engine::new(config, factory),
        }
    };
    if !quiet {
        println!("workload:  {} ({} requests)", workload.name, workload.len());
        println!(
            "engine:    {} × {} shards (ε = {}, batch = {}{}, router = {})",
            args.variant,
            args.shards,
            args.eps,
            args.batch,
            if args.coalesce { " coalesced" } else { "" },
            engine.router().name()
        );
        if let Some(device) = args.device {
            println!("device:    {} profile pricing op streams", device.name());
        }
        if let Some(s) = &substrate {
            println!(
                "substrate: {} rules, {}-cell windows, verify at {} cadence",
                match s.mode {
                    Mode::Strict => "strict",
                    Mode::Relaxed => "relaxed",
                },
                s.window_span,
                s.verify
            );
        }
        if let Some(dir) = &args.wal_dir {
            println!(
                "wal:       one log per shard under {dir}, group commit per served batch{}",
                match args.crash_after {
                    Some(n) => format!("; kill -9 scheduled after {n} requests"),
                    None => String::new(),
                }
            );
        }
    }

    let rebalance_opts = if args.defrag {
        RebalanceOptions::with_defrag(args.eps)
    } else {
        RebalanceOptions::default()
    };
    if args.auto_rebalance {
        engine.set_auto_rebalance(
            RebalancePolicy::new(args.tau, args.policy_k, args.hysteresis),
            rebalance_opts,
        );
        if !quiet {
            println!(
                "policy:    auto-rebalance (τ = {}, k = {}, hysteresis = {})",
                args.tau, args.policy_k, args.hysteresis
            );
        }
    }
    // Observation cadence for --auto-rebalance (the policy observes
    // imbalance at one snapshot barrier per this many requests).
    const OBSERVE_EVERY: usize = 4_096;
    // A resize fires at the midpoint, so without a rebalance cadence the
    // workload still needs to arrive in (at least) two chunks.
    let midpoint = workload.len() / 2;
    let chunk_size = if let Some(n) = args.rebalance_every {
        n
    } else if args.auto_rebalance {
        OBSERVE_EVERY
    } else if args.resize.is_some() {
        midpoint.max(1)
    } else {
        workload.len().max(1)
    };
    let plan = ServePlan {
        args,
        chunk_size,
        midpoint,
        rebalance_opts,
    };
    let start = std::time::Instant::now();
    let mut engine = match drive_workload(engine, workload, config, &plan) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("engine run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The final explicit verification scan (the only one a `final` cadence
    // ever runs before shutdown): extents against the reallocator, every
    // live object's bytes re-checksummed, per shard.
    let substrate_reports = if engine.substrate_enabled() {
        match engine.verify_substrate() {
            Ok(reports) => Some(reports),
            Err(e) => {
                eprintln!("substrate verification FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    // Scrape the observability surface before shutdown consumes the fleet.
    let scraped = if args.metrics || args.metrics_json {
        match engine.metrics() {
            Ok(snapshot) => Some(snapshot),
            Err(e) => {
                eprintln!("metrics scrape failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let live_shards = engine.shards();
    let finals = match engine.shutdown() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("engine run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();

    // Machine export: the snapshot's JSON is the run's *only* stdout, so it
    // pipes straight into a parser (the CI smoke check does exactly that).
    if args.metrics_json {
        let snapshot = scraped.expect("scraped above");
        println!("{}", snapshot.to_json());
        return ExitCode::SUCCESS;
    }

    // Live shards lead the finals; shards retired by a shrink follow (their
    // rows print for the record, but volume aggregates would be skewed by
    // their empty structures, so the aggregate row uses live shards only).
    let stats = EngineStats {
        per_shard: finals
            .iter()
            .take(live_shards)
            .map(|f| f.stats.clone())
            .collect(),
    };
    let with_bytes = substrate_reports.is_some();
    let with_plan = args.coalesce;
    let mut headers = vec!["shard", "requests", "batches"];
    if with_plan {
        // The planning columns only exist under --coalesce: requests the
        // batch planner folded into a surviving op, and requests whose
        // insert+delete pair cancelled without touching the reallocator.
        headers.extend(["coalesced", "cancelled"]);
    }
    headers.extend([
        "objects",
        "volume",
        "footprint",
        "structure",
        "delta",
        "moves",
        "moved vol",
        "migr in",
        "migr out",
    ]);
    if with_bytes {
        // The physical-I/O columns only exist when shards run substrates:
        // `bytes w` counts every cell physically written (allocations,
        // flush copies, adopted transfers); `bytes in`/`bytes out` count
        // cells that crossed shard address spaces, checksummed on arrival.
        headers.extend(["bytes w", "bytes in", "bytes out"]);
    }
    headers.push("ratio");
    let mut table = Table::new(format!("per-shard stats ({})", args.variant), &headers);
    let row = |label: String, s: &ShardStats| {
        let mut cells = vec![label, fmt_u64(s.requests), fmt_u64(s.batches)];
        if with_plan {
            cells.push(fmt_u64(s.requests_coalesced));
            cells.push(fmt_u64(s.requests_cancelled));
        }
        cells.extend([
            fmt_u64(s.live_count as u64),
            fmt_u64(s.live_volume),
            fmt_u64(s.footprint),
            fmt_u64(s.structure_size),
            fmt_u64(s.max_object_size),
            fmt_u64(s.total_moves),
            fmt_u64(s.total_moved_volume),
            fmt_u64(s.migrations_in),
            fmt_u64(s.migrations_out),
        ]);
        if with_bytes {
            cells.push(fmt_u64(s.substrate_bytes_written));
            cells.push(fmt_u64(s.substrate_bytes_in));
            cells.push(fmt_u64(s.substrate_bytes_out));
        }
        cells.push(fmt2(s.max_settled_ratio));
        cells
    };
    for s in &stats.per_shard {
        table.row(row(s.shard.to_string(), s));
    }
    // Shards retired by a shrinking resize: history rows, not live state.
    for f in finals.iter().skip(live_shards) {
        table.row(row(format!("{}†", f.stats.shard), &f.stats));
    }
    let mut aggregate = vec![
        "Σ".into(),
        fmt_u64(stats.requests()),
        fmt_u64(stats.batches()),
    ];
    if with_plan {
        aggregate.push(fmt_u64(stats.requests_coalesced()));
        aggregate.push(fmt_u64(stats.requests_cancelled()));
    }
    aggregate.extend([
        fmt_u64(stats.live_count() as u64),
        fmt_u64(stats.live_volume()),
        fmt_u64(stats.footprint()),
        fmt_u64(stats.structure_size()),
        fmt_u64(stats.max_object_size()),
        fmt_u64(stats.total_moves()),
        fmt_u64(stats.total_moved_volume()),
        fmt_u64(stats.per_shard.iter().map(|s| s.migrations_in).sum()),
        fmt_u64(stats.per_shard.iter().map(|s| s.migrations_out).sum()),
    ]);
    if with_bytes {
        aggregate.push(fmt_u64(stats.bytes_written()));
        aggregate.push(fmt_u64(stats.bytes_migrated_in()));
        aggregate.push(fmt_u64(stats.bytes_migrated_out()));
    }
    aggregate.push(fmt2(stats.worst_settled_ratio()));
    table.row(aggregate);
    table.print();
    println!("(aggregate ratio column is the worst shard's settled ratio)");
    println!(
        "imbalance: max V_i / mean V_i = {:.3} (max {}, mean {:.0})",
        stats.imbalance_ratio(),
        stats.max_shard_volume(),
        stats.mean_shard_volume()
    );
    if args.wal_dir.is_some() {
        println!(
            "durability: {} wal records / {} bytes in {} group commits; recoveries: {}",
            fmt_u64(stats.wal_records()),
            fmt_u64(stats.wal_bytes()),
            fmt_u64(stats.group_commits()),
            stats.recoveries(),
        );
    }
    if let Some(reports) = &substrate_reports {
        println!("\n-- substrate (per-shard byte stores over disjoint windows) --");
        for r in reports {
            println!(
                "  shard {}: window {} — {} objects / {} cells byte-verified",
                r.shard, r.window, r.objects, r.bytes
            );
        }
        println!(
            "  physical writes: {} cells; cross-window transfers: {} out / {} in \
             (ledger migrate volume: {} out / {} in)",
            stats.bytes_written(),
            stats.bytes_migrated_out(),
            stats.bytes_migrated_in(),
            stats.migrated_volume_out(),
            stats.migrated_volume(),
        );
        println!(
            "  verification scans: {} ({} cadence); rule violations: 0 \
             (the run would have failed otherwise)",
            stats.substrate_verifications(),
            args.cadence.unwrap_or_default()
        );
    }

    println!(
        "\nthroughput: {:.0} requests/sec ({} requests in {:.3}s, wall clock)",
        workload.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        workload.len(),
        elapsed.as_secs_f64()
    );

    if let Some(snapshot) = &scraped {
        print_metrics(snapshot);
    }

    println!("\n-- cost competitiveness over the union of shard ledgers --");
    for f in storage_realloc::cost::standard_suite() {
        let price = |w: u64| f.cost(w);
        let alloc: f64 = finals
            .iter()
            .map(|s| s.ledger.total_alloc_cost(&price))
            .sum();
        let realloc: f64 = finals
            .iter()
            .map(|s| s.ledger.total_realloc_cost(&price))
            .sum();
        let ratio = if alloc == 0.0 { 0.0 } else { realloc / alloc };
        println!("  {:>12}: {ratio:.3}", f.name());
    }
    ExitCode::SUCCESS
}

/// The `engine --async` path: the same workload served by a fleet of
/// per-tenant single-shard engines on a shared worker pool. Requests
/// route to tenant `id mod --tenants`; every ack future is dropped (the
/// quiesce barrier at the end is the synchronization point, exactly as a
/// fire-and-forget client would use the facade) and any request the
/// reallocator rejected surfaces there.
fn run_engine_async(args: &Args, workload: &Workload) -> ExitCode {
    if make_algorithm(&args.variant, args.eps).is_none() {
        eprintln!("error: unknown engine variant {:?}", args.variant);
        return ExitCode::FAILURE;
    }
    let tenants_n = args.tenants.unwrap_or(8);
    let substrate = args.substrate.map(|mode| SubstrateConfig {
        mode,
        verify: args.cadence.unwrap_or_default(),
        ..SubstrateConfig::default()
    });
    let tenant_config = EngineConfig {
        shards: 1,
        batch: args.batch,
        coalesce: args.coalesce,
        substrate,
        ..Default::default()
    };
    let fleet = Fleet::new(FleetConfig::with_workers(args.shards).stealing(args.steal));
    let mut tenants: Vec<AsyncEngine> = (0..tenants_n)
        .map(|_| {
            fleet.register(tenant_config, Box::new(HashRouter::new(1)), |_shard| {
                make_algorithm(&args.variant, args.eps).expect("variant validated above")
            })
        })
        .collect();

    println!("workload:  {} ({} requests)", workload.name, workload.len());
    println!(
        "fleet:     {} × {} tenants on {} pool workers (ε = {}, batch = {}{}, stealing {})",
        args.variant,
        tenants_n,
        args.shards,
        args.eps,
        args.batch,
        if args.coalesce { " coalesced" } else { "" },
        if args.steal { "on" } else { "off" },
    );

    let start = std::time::Instant::now();
    for req in &workload.requests {
        let t = (req.id().0 % tenants_n as u64) as usize;
        match *req {
            Request::Insert { id, size } => drop(tenants[t].insert(id, size)),
            Request::Delete { id } => drop(tenants[t].delete(id)),
        }
    }
    let waits: Vec<_> = tenants.iter_mut().map(|t| t.quiesce()).collect();
    let mut stats = Vec::with_capacity(tenants_n);
    for (t, wait) in waits.into_iter().enumerate() {
        match wait.wait() {
            Ok(s) => stats.push(s),
            Err(e) => {
                eprintln!("tenant {t} failed to quiesce: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = start.elapsed();
    let steal = fleet.steal_totals();
    for tenant in tenants {
        if let Err(e) = tenant.shutdown() {
            eprintln!("tenant shutdown failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    fleet.shutdown();

    // Per-tenant rows (capped — a thousand-tenant fleet prints as a
    // sample plus the aggregate), then the Σ row over every tenant.
    const SHOWN: usize = 10;
    let mut table = Table::new(
        format!("per-tenant stats ({})", args.variant),
        &[
            "tenant",
            "requests",
            "batches",
            "objects",
            "volume",
            "footprint",
            "ratio",
        ],
    );
    for (t, s) in stats.iter().enumerate().take(SHOWN) {
        table.row(vec![
            t.to_string(),
            fmt_u64(s.requests()),
            fmt_u64(s.batches()),
            fmt_u64(s.live_count() as u64),
            fmt_u64(s.live_volume()),
            fmt_u64(s.footprint()),
            fmt2(s.worst_settled_ratio()),
        ]);
    }
    if stats.len() > SHOWN {
        let mut row = vec![format!("… {} more", stats.len() - SHOWN)];
        row.resize(7, String::new());
        table.row(row);
    }
    table.row(vec![
        "Σ".into(),
        fmt_u64(stats.iter().map(EngineStats::requests).sum()),
        fmt_u64(stats.iter().map(EngineStats::batches).sum()),
        fmt_u64(stats.iter().map(|s| s.live_count() as u64).sum()),
        fmt_u64(stats.iter().map(EngineStats::live_volume).sum()),
        fmt_u64(stats.iter().map(EngineStats::footprint).sum()),
        fmt2(
            stats
                .iter()
                .map(EngineStats::worst_settled_ratio)
                .fold(0.0, f64::max),
        ),
    ]);
    table.print();

    if args.steal {
        println!(
            "stealing:  {} batches stolen, {} conflicts; stolen batches waited \
             p50 {:.1} µs / p99 {:.1} µs before a thief took them",
            fmt_u64(steal.batches_stolen),
            fmt_u64(steal.steal_conflicts),
            steal.steal_wait_ns.p50() / 1e3,
            steal.steal_wait_ns.p99() / 1e3,
        );
    }
    println!(
        "\nthroughput: {:.0} requests/sec ({} requests in {:.3}s, wall clock)",
        workload.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        workload.len(),
        elapsed.as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\n\n\
                 usage: realloc-sim <algorithm> [--eps f] [--trace file | --churn vol ops] [--seed n] [--strict|--relaxed] [--crash-check]\n\
                 \x20      realloc-sim engine [--variant alg] [--shards n] [--batch n] [--coalesce] [--router hash|table]\n\
                 \x20                         [--rebalance-every n [--online] | --auto-rebalance [--tau f] [--policy-k n] [--hysteresis n]]\n\
                 \x20                         [--resize n] [--defrag] [--substrate [relaxed|strict]] [--verify-cadence final|quiesce|batch]\n\
                 \x20                         [--wal-dir dir [--crash-after n]] [--metrics] [--metrics-json] [--device unit|disk|ssd]\n\
                 \x20                         [--async [--tenants n] [--steal]] [--eps f] [--trace file | --churn vol ops] [--seed n]\n\
                 \x20      (--rebalance-every alone quiesces the whole fleet per rebalance; --online or\n\
                 \x20       --auto-rebalance migrate in bounded batches interleaved with serving;\n\
                 \x20       --substrate backs each shard with a byte store over its own address window —\n\
                 \x20       verification cost: final = one O(V) scan per shard for the whole run,\n\
                 \x20       quiesce = one per barrier (default), batch = one per channel batch (debugging))"
            );
            return ExitCode::FAILURE;
        }
    };

    let workload = match &args.trace {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match storage_realloc::workloads::file::from_text(&text) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => storage_realloc::workloads::churn::churn(
            &storage_realloc::workloads::churn::ChurnConfig {
                dist: storage_realloc::workloads::dist::SizeDist::ClassPowerLaw {
                    classes: 10,
                    decay: 0.7,
                },
                target_volume: args.churn.0,
                churn_ops: args.churn.1,
                seed: args.seed,
            },
        ),
    };

    if args.algorithm == "engine" {
        return if args.async_mode {
            run_engine_async(&args, &workload)
        } else {
            run_engine(&args, &workload)
        };
    }

    let Some(mut algorithm) = make_algorithm(&args.algorithm, args.eps) else {
        eprintln!("error: unknown algorithm {:?}", args.algorithm);
        return ExitCode::FAILURE;
    };

    println!("workload:  {} ({} requests)", workload.name, workload.len());
    println!("algorithm: {} (ε = {})", algorithm.name(), args.eps);

    let result = match run_workload(algorithm.as_mut(), &workload, args.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ledger = &result.ledger;
    println!("\n-- space --");
    println!("final volume V:        {}", result.final_volume);
    println!("final structure:       {}", result.final_structure);
    println!(
        "max settled ratio:     {:.4}",
        ledger.max_settled_space_ratio()
    );
    println!("∆ (largest object):    {}", result.delta);

    println!("\n-- movement --");
    println!("total reallocations:   {}", ledger.total_moves());
    println!("total moved volume:    {}", ledger.total_moved_volume());
    println!(
        "worst single request:  {} cells moved",
        ledger.max_op_moved_volume()
    );
    println!("checkpoint barriers:   {}", ledger.total_checkpoints());

    println!("\n-- cost competitiveness (reallocation / allocation cost) --");
    for f in storage_realloc::cost::standard_suite() {
        println!(
            "  {:>12}: {:.3}",
            f.name(),
            ledger.cost_ratio(&|w| f.cost(w))
        );
    }

    if let Some(sim) = &result.sim {
        println!("\n-- substrate --");
        println!("mode:                  {:?}", sim.mode());
        println!("ops replayed:          {}", sim.ops_applied());
        println!("checkpoints:           {}", sim.checkpoints());
        println!("rule violations:       0 (run would have failed otherwise)");
        if args.config.crash_check {
            println!("crash recovery:        verified after every request");
        }
    }
    ExitCode::SUCCESS
}
