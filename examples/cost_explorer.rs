//! Cost-obliviousness, demonstrated: one run, one move log, priced after
//! the fact on seven different storage media — and the competitive ratio
//! holds on all of them at once. Also shows the deliberate counterexample:
//! a *superadditive* cost function (outside the paper's class `Fsa`) for
//! which no guarantee is claimed.
//!
//! ```sh
//! cargo run --release --example cost_explorer
//! ```

use storage_realloc::cost::{check_membership, CostFn, Superlinear};
use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

fn main() {
    let eps = 0.25;
    let workload = churn(&ChurnConfig {
        dist: SizeDist::ClassPowerLaw {
            classes: 11,
            decay: 0.75,
        },
        target_volume: 100_000,
        churn_ops: 50_000,
        seed: 1,
    });
    println!("workload: {} ({} requests)", workload.name, workload.len());

    let mut r = CostObliviousReallocator::new(eps);
    let result = run_workload(&mut r, &workload, RunConfig::plain()).unwrap();
    let eps_prime: f64 = r.eps().prime();
    let theory = (1.0 / eps_prime) * (1.0 / eps_prime).ln();

    println!("\nthe algorithm made every decision without a cost function.");
    println!(
        "now price its {} moves under each medium:\n",
        result.ledger.total_moves()
    );
    println!(
        "{:>12}  {:>10}  {:>14}  {:>8}  membership",
        "medium", "b(f)", "b(f)/theory", "in Fsa"
    );
    for f in storage_realloc::cost::standard_suite() {
        let b = result.ledger.cost_ratio(&|w| f.cost(w));
        let member = check_membership(f.as_ref(), 1 << 16, 2048, 8).is_member();
        println!(
            "{:>12}  {:>10.2}  {:>14.3}  {:>8}  {}",
            f.name(),
            b,
            b / theory,
            f.in_fsa(),
            if member { "verified" } else { "VIOLATED" }
        );
    }

    // The counterexample: f(w) = w² is superadditive. The paper's guarantee
    // explicitly does not cover it, and the ratio shows why the class
    // restriction matters: big objects dominate both sides, so the ratio is
    // workload-dependent with no universal bound.
    let quad = Superlinear;
    let b = result.ledger.cost_ratio(&|w| quad.cost(w));
    let report = check_membership(&quad, 1 << 10, 128, 8);
    println!(
        "\n{:>12}  {:>10.2}  {:>14}  {:>8}  subadditivity fails at {:?}",
        quad.name(),
        b,
        "-",
        quad.in_fsa(),
        report.subadditivity_violation.unwrap()
    );

    println!(
        "\ntheory line (1/ε')ln(1/ε') = {theory:.1}; every subadditive medium's ratio\n\
         sits within a small constant of it — that is Theorem 2.1's promise, and\n\
         it required zero knowledge of the medium at run time."
    );
}
