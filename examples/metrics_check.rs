//! Validator for the `realloc-sim engine --metrics-json` export.
//!
//! CI pipes the binary's JSON into this checker:
//!
//! ```text
//! realloc-sim engine --device disk --metrics-json --churn 20000 8000 \
//!   | cargo run --release --example metrics_check
//! ```
//!
//! It re-parses the document with the same strict parser the library
//! ships, then checks the schema: every required key present, every
//! histogram internally consistent (`count = Σ buckets`, percentiles
//! inside `[min, max]`), the sim-time lanes summing to the reported
//! total, and `per_shard` matching the declared shard count.
//!
//! Run with no piped input (how the CI examples step runs it), it
//! generates a snapshot in-process — two shards of churn on the `ssd`
//! profile — and validates its own export, so the schema check is a
//! living acceptance test even standalone.

use std::io::{IsTerminal, Read};

use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

fn main() {
    let text = piped_input().unwrap_or_else(self_scrape);
    let doc = Json::parse(&text).expect("metrics export must re-parse");
    validate(&doc);
    let shards = doc.get("shards").and_then(Json::as_u64).unwrap();
    println!(
        "metrics export OK: schema {}, device {}, {} shards, {} events",
        doc.get("schema").and_then(Json::as_u64).unwrap(),
        doc.get("device").and_then(Json::as_str).unwrap_or("none"),
        shards,
        doc.get("events").and_then(Json::as_arr).unwrap().len(),
    );
}

/// Reads stdin when something is piped in; `None` on a terminal or when
/// the pipe is empty (the CI examples step runs with an empty stdin).
fn piped_input() -> Option<String> {
    let stdin = std::io::stdin();
    if stdin.is_terminal() {
        return None;
    }
    let mut text = String::new();
    stdin.lock().read_to_string(&mut text).ok()?;
    let trimmed = text.trim();
    (!trimmed.is_empty()).then(|| trimmed.to_string())
}

/// Generates an export to validate: two shards of churn, ssd-priced.
fn self_scrape() -> String {
    let mut config = EngineConfig::with_shards(2).coalescing();
    config.device = Some(DeviceProfile::Ssd);
    let mut engine = Engine::new(config, |_| Box::new(CostObliviousReallocator::new(0.25)));
    let workload = churn(&ChurnConfig {
        dist: SizeDist::Uniform { lo: 4, hi: 256 },
        target_volume: 20_000,
        churn_ops: 4_000,
        seed: 5,
    });
    engine.drive(&workload).expect("shards healthy");
    engine.quiesce().expect("quiesce");
    let scrape = engine.metrics().expect("scrape");
    engine.shutdown().expect("shutdown");
    scrape.to_json().to_string()
}

fn validate(doc: &Json) {
    assert_eq!(
        doc.get("schema").and_then(Json::as_u64),
        Some(3),
        "unknown schema version"
    );
    for key in [
        "device",
        "scrape",
        "shards",
        "counters",
        "gauges",
        "sim_time_us",
        "per_shard",
        "steal",
        "events",
    ] {
        assert!(doc.get(key).is_some(), "missing top-level key {key:?}");
    }

    let counters = doc.get("counters").unwrap();
    for key in [
        "requests",
        "batches",
        "batch_requests_coalesced",
        "batch_requests_cancelled",
        "errors",
        "total_moves",
        "total_moved_volume",
        "migrations_in",
        "migrations_out",
        "wal_records",
        "wal_bytes",
        "group_commits",
        "recoveries",
        "events_dropped",
    ] {
        assert!(
            counters.get(key).and_then(Json::as_u64).is_some(),
            "counters.{key} missing or not an integer"
        );
    }

    let gauges = doc.get("gauges").unwrap();
    for key in [
        "live_count",
        "live_volume",
        "footprint",
        "structure_size",
        "max_object_size",
    ] {
        assert!(
            gauges.get(key).and_then(Json::as_u64).is_some(),
            "gauges.{key} missing or not an integer"
        );
    }

    // The lanes must sum to the reported total.
    let sim = doc.get("sim_time_us").unwrap();
    let lane = |k: &str| {
        sim.get(k)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("sim_time_us.{k} missing"))
    };
    let total = lane("total");
    let sum = lane("serve") + lane("migrate") + lane("wal_commit");
    assert!(
        (total - sum).abs() <= 1e-6 * total.abs().max(1.0),
        "sim_time_us.total {total} ≠ lane sum {sum}"
    );

    let declared = doc.get("shards").and_then(Json::as_u64).unwrap() as usize;
    let per_shard = doc.get("per_shard").and_then(Json::as_arr).unwrap();
    assert_eq!(per_shard.len(), declared, "per_shard length ≠ shards");
    for shard in per_shard {
        for key in ["shard", "algorithm", "requests", "live_volume"] {
            assert!(shard.get(key).is_some(), "per_shard entry missing {key:?}");
        }
        for key in [
            "batch_sim_us",
            "commit_records",
            "batch_service_ns",
            "commit_latency_ns",
            "intake_stall_ns",
            "batch_raw_requests",
            "batch_planned_requests",
        ] {
            let h = shard
                .get(key)
                .unwrap_or_else(|| panic!("per_shard entry missing histogram {key:?}"));
            check_histogram(key, h);
        }
    }

    // Schema 3's work-stealing block: two counters plus the wait
    // histogram (all zero on a sync engine, but always present).
    let steal = doc.get("steal").unwrap();
    for key in ["batches_stolen", "steal_conflicts"] {
        assert!(
            steal.get(key).and_then(Json::as_u64).is_some(),
            "steal.{key} missing or not an integer"
        );
    }
    check_histogram(
        "steal_wait_ns",
        steal
            .get("steal_wait_ns")
            .expect("steal.steal_wait_ns missing"),
    );

    for event in doc.get("events").and_then(Json::as_arr).unwrap() {
        for key in ["seq", "at_us", "label", "phase", "payload"] {
            assert!(event.get(key).is_some(), "event missing {key:?}");
        }
    }
}

/// The exported-histogram invariant: `count = Σ buckets`, and the
/// percentile fields sit inside the observed `[min, max]`.
fn check_histogram(name: &str, h: &Json) {
    let field = |k: &str| {
        h.get(k)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("{name}.{k} missing or not an integer"))
    };
    let count = field("count");
    field("sum");
    let min = field("min");
    let max = field("max");
    let buckets = h
        .get("buckets")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{name}.buckets missing"));
    let total: u64 = buckets.iter().filter_map(Json::as_u64).sum();
    assert_eq!(count, total, "{name}: count ≠ Σ buckets");
    for q in ["p50", "p90", "p99", "p999"] {
        let p = h
            .get(q)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{name}.{q} missing"));
        if count > 0 {
            assert!(
                p >= min as f64 && p <= max as f64,
                "{name}.{q} = {p} outside [{min}, {max}]"
            );
        } else {
            assert_eq!(p, 0.0, "{name}.{q} nonzero on empty histogram");
        }
    }
}
