//! A self-healing fleet: auto-rebalance policy + online migration.
//!
//! `examples/rebalancing_service.rs` repairs a skew storm with an explicit
//! barrier `Engine::rebalance` — correct, but the whole fleet stalls while
//! the migration runs. This example closes the loop the way a production
//! driver would:
//!
//! 1. a `RebalancePolicy { τ, k, hysteresis }` is installed on the engine
//!    ([`Engine::set_auto_rebalance`]), so every barrier observation feeds
//!    the trigger — no human watches the imbalance ratio;
//! 2. a skewed delete storm drives `max V_i / mean V_i` past τ; after `k`
//!    consecutive breaches the policy fires an **online** rebalance
//!    session by itself;
//! 3. the storm ends (the skew "releases") and ordinary churn keeps
//!    arriving while the session migrates in bounded batches — freeze →
//!    copy → flip route → resume, never a fleet-wide quiesce;
//! 4. the footprint bound `Σ footprint_i ≤ (1+ε)·Σ V_i + N·∆` holds at
//!    every observation, the fleet converges under τ, and both halves of
//!    every transfer are in the ledgers.
//!
//! Run with `cargo run --release --example online_rebalancing`.

use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{skewed_churn_release, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

const SHARDS: usize = 4;
const EPS: f64 = 0.25;
/// Requests between policy observations (one snapshot barrier each).
const OBSERVE_EVERY: usize = 2_048;
const TAU: f64 = 1.5;

fn factory(_shard: usize) -> Box<dyn Reallocator + Send> {
    Box::new(CostObliviousReallocator::new(EPS))
}

fn check_footprint(stats: &EngineStats) {
    let bound = (1.0 + EPS) * stats.live_volume() as f64
        + (stats.shards() as u64 * stats.max_object_size()) as f64;
    assert!(
        (stats.footprint() as f64) <= bound,
        "footprint {} exceeds (1+ε)·ΣV + N·∆ = {bound:.0}",
        stats.footprint()
    );
}

fn main() {
    // The storm: deletes spare shard 0's objects for the first 20k churn
    // ops, then the skew releases and the last 20k ops churn uniformly —
    // the window in which the policy-fired session drains.
    let probe = TableRouter::new(SHARDS);
    let workload = skewed_churn_release(
        &ChurnConfig {
            dist: SizeDist::Uniform { lo: 4, hi: 128 },
            target_volume: 40_000,
            churn_ops: 40_000,
            seed: 4242,
        },
        |id| probe.route(id) == 0,
        20_000,
    );
    println!("workload: {} ({} requests)", workload.name, workload.len());
    println!(
        "engine:   cost-oblivious × {SHARDS} shards, table router, ε = {EPS}\n\
         policy:   τ = {TAU}, k = 2, hysteresis = 2, batches of 48 objects\n"
    );

    let mut engine = Engine::with_router(
        EngineConfig::with_shards(SHARDS),
        Box::new(TableRouter::new(SHARDS)),
        factory,
    );
    engine.set_auto_rebalance(
        RebalancePolicy::new(TAU, 2, 2),
        RebalanceOptions::default().batched(48),
    );

    let mut served = 0usize;
    let mut peak_imbalance: f64 = 0.0;
    let mut fired = 0u32;
    let mut reports: Vec<RebalanceReport> = Vec::new();
    for chunk in workload.requests.chunks(OBSERVE_EVERY) {
        engine
            .drive(&Workload::new("chunk", chunk.to_vec()))
            .expect("drive");
        served += chunk.len();
        let was_active = engine.rebalance_active();
        let stats = engine.snapshot().expect("snapshot"); // policy observes here
        check_footprint(&stats);
        peak_imbalance = peak_imbalance.max(stats.imbalance_ratio());
        if !was_active && engine.rebalance_active() {
            fired += 1;
            println!(
                "@{served:>6}  imbalance {:.2} > τ for 2 observations -> online session fired",
                stats.imbalance_ratio()
            );
        }
        if let Some(report) = engine.take_rebalance_report() {
            println!(
                "@{served:>6}  session complete ({} mode): {} objects / {} cells in {} batches, \
                 imbalance {:.2} -> {:.2}",
                report.mode,
                report.migrated_objects,
                report.migrated_volume,
                report.batches,
                report.before.imbalance_ratio(),
                report.after.imbalance_ratio()
            );
            reports.push(report);
        }
    }
    // Drain anything still migrating at workload end.
    while engine.rebalance_step().expect("step") {}
    reports.extend(engine.take_rebalance_report());

    assert!(fired >= 1, "the storm must trip the policy");
    assert_eq!(reports.len() as u32, fired, "every session completes");
    assert!(
        peak_imbalance > 2.0,
        "storm too weak ({peak_imbalance:.2}) to demonstrate anything"
    );
    for report in &reports {
        assert_eq!(report.mode, RebalanceMode::Online);
        assert!(report.batches > 1, "bounded batches, not one big stall");
    }

    let stats = engine.quiesce().expect("no request errors");
    check_footprint(&stats);
    assert!(
        stats.imbalance_ratio() < TAU,
        "fleet still above τ ({:.2}) after auto-repair",
        stats.imbalance_ratio()
    );
    println!(
        "\nfinal:    imbalance {:.2} (peak {peak_imbalance:.2}), {} objects / {} cells live",
        stats.imbalance_ratio(),
        stats.live_count(),
        stats.live_volume()
    );

    // Both halves of every transfer are first-class ledger records.
    let finals = engine.shutdown().expect("clean shutdown");
    let (mut ins, mut outs) = (0usize, 0usize);
    for f in &finals {
        ins += f.ledger.count_kind(OpKind::MigrateIn);
        outs += f.ledger.count_kind(OpKind::MigrateOut);
    }
    let migrated: u64 = reports.iter().map(|r| r.migrated_objects).sum();
    assert_eq!(ins as u64, migrated, "every adoption ledgered");
    assert_eq!(ins, outs, "every transfer has both halves");
    println!("ledgers:  {ins} migrate-ins = {outs} migrate-outs across {fired} session(s)");
    println!("detected the storm, repaired it online, never stalled the fleet ✓");
}
