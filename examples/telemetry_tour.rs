//! A guided tour of the observability layer.
//!
//! Runs one churn workload through the sharded engine twice — once priced
//! as a seek-dominated rotating disk, once as erase-block flash — and
//! checks the two contracts the telemetry layer makes:
//!
//! 1. **Histogram invariants.** Every exported histogram is internally
//!    consistent: bucket counts account for every observation
//!    (`count = Σ buckets`), the extremes bracket the data
//!    (`min ≤ mean ≤ max`), and percentiles are monotone in `q` and
//!    clamped to `[min, max]`.
//! 2. **Sim time is ledger pricing.** The per-shard simulated device time
//!    the scrape reports must equal pricing the shard's own cost ledger
//!    through the same [`DeviceModel`](storage_realloc::sim::DeviceModel)
//!    — the cost-oblivious algorithm never saw the device, so the
//!    agreement (to float round-off) *is* cost obliviousness, observed.
//!
//! Run with `cargo run --release --example telemetry_tour`.

use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

const SHARDS: usize = 3;
const EPS: f64 = 0.25;

fn main() {
    let workload = churn(&ChurnConfig {
        dist: SizeDist::ClassPowerLaw {
            classes: 8,
            decay: 0.7,
        },
        target_volume: 40_000,
        churn_ops: 8_000,
        seed: 11,
    });
    println!(
        "workload: {} ({} requests); engine: cost-oblivious × {SHARDS}, ε = {EPS}\n",
        workload.name,
        workload.len()
    );

    for profile in [DeviceProfile::Disk, DeviceProfile::Ssd] {
        tour(profile, &workload);
    }
    println!("\nall histogram and sim-time invariants hold");
}

fn tour(profile: DeviceProfile, workload: &Workload) {
    let mut config = EngineConfig::with_shards(SHARDS);
    config.device = Some(profile);
    let mut engine = Engine::new(config, |_| Box::new(CostObliviousReallocator::new(EPS)));
    engine.drive(workload).expect("shards healthy");
    engine.quiesce().expect("quiesce");
    let scrape = engine.metrics().expect("scrape");
    let finals = engine.shutdown().expect("shutdown");

    println!("── device profile: {} ──", profile.name());
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "shard", "serve sim µs", "migr sim µs", "ledger µs", "batch p50", "batch p99"
    );

    // 1. Every exported histogram satisfies the structural invariants.
    for m in &scrape.per_shard {
        for (name, h) in [
            ("batch_sim_us", &m.batch_sim_us),
            ("commit_records", &m.commit_records),
            ("batch_service_ns", &m.batch_service_ns),
            ("commit_latency_ns", &m.commit_latency_ns),
            ("intake_stall_ns", &m.intake_stall_ns),
        ] {
            check_histogram(m.shard, name, h);
        }
    }

    // 2. Sim time ≈ pricing the ledger through the same device model.
    let device = profile.build();
    let price = |w: u64| {
        device.time_of(&StorageOp::Allocate {
            id: ObjectId(0),
            to: Extent::new(0, w),
        })
    };
    let checkpoint = device.time_of(&StorageOp::CheckpointBarrier);
    for (m, f) in scrape.per_shard.iter().zip(&finals) {
        let ledger_us = f.ledger.total_alloc_cost(&price)
            + f.ledger.total_realloc_cost(&price)
            + f.ledger.total_checkpoints() as f64 * checkpoint;
        let sim_us = m.serve_sim_us + m.migrate_sim_us;
        let rel = (sim_us - ledger_us).abs() / ledger_us.max(1.0);
        assert!(
            rel < 1e-9,
            "shard {}: sim {sim_us} µs disagrees with ledger {ledger_us} µs (rel {rel})",
            m.shard
        );
        println!(
            "{:>5} {:>12.0} {:>12.0} {:>12.0} {:>10.0} {:>10.0}",
            m.shard,
            m.serve_sim_us,
            m.migrate_sim_us,
            ledger_us,
            m.batch_sim_us.p50(),
            m.batch_sim_us.p99(),
        );
    }
    println!(
        "{:>5} {:>12.0} µs total simulated device time\n",
        "Σ",
        scrape.sim_time_us()
    );
}

fn check_histogram(shard: usize, name: &str, h: &HistogramSnapshot) {
    assert!(
        h.is_consistent(),
        "shard {shard} {name}: count {} ≠ Σ buckets",
        h.count
    );
    if h.count == 0 {
        return;
    }
    let mean = h.mean();
    assert!(
        h.min as f64 <= mean && mean <= h.max as f64,
        "shard {shard} {name}: mean {mean} outside [{}, {}]",
        h.min,
        h.max
    );
    let mut prev = h.min as f64;
    for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let p = h.percentile(q);
        assert!(
            p >= prev && p <= h.max as f64,
            "shard {shard} {name}: percentile({q}) = {p} not monotone in [{}, {}]",
            h.min,
            h.max
        );
        prev = p;
    }
}
