//! A miniature database block store on top of the checkpointed reallocator —
//! the paper's motivating scenario (§3, the TokuDB block translation layer).
//!
//! Blocks are rewritten copy-on-write style; the reallocator keeps the disk
//! footprint within (1+ε) of the live data while obeying the durability
//! rules: nonoverlapping moves and no reuse of space freed since the last
//! checkpoint. We crash the "database" at random points and prove recovery
//! from the last checkpointed translation map never loses a block.
//!
//! ```sh
//! cargo run --release --example db_block_store
//! ```

use storage_realloc::cost::Affine;
use storage_realloc::prelude::*;
use storage_realloc::sim::DeviceModel;
use storage_realloc::workloads::dist::SizeDist;
use storage_realloc::workloads::trace::block_rewrites;
use storage_realloc::workloads::Request;

fn main() {
    let eps = 0.25;
    let mut db = CheckpointedReallocator::new(eps);
    let mut disk = SimStore::new(Mode::Strict);
    // A rotating disk: 4 ms seek + 10 µs per 4 KiB page (1 cell = 1 page).
    let device = DeviceModel::new(Box::new(Affine::disk(4000.0, 10.0)), 50_000.0);

    // 2,000 logical blocks, 10,000 rewrites, bimodal page counts: mostly
    // small B-tree nodes, occasionally large blobs.
    let dist = SizeDist::Bimodal {
        small_lo: 1,
        small_hi: 16,
        large_lo: 128,
        large_hi: 512,
        large_prob: 0.05,
    };
    let trace = block_rewrites(2_000, 10_000, &dist, 2024);
    println!("trace: {} ({} requests)", trace.name, trace.len());

    let mut simulated_us = 0.0;
    let mut crashes_survived = 0u32;
    for (i, req) in trace.requests.iter().enumerate() {
        let outcome = match *req {
            Request::Insert { id, size } => db.insert(id, size).unwrap(),
            Request::Delete { id } => db.delete(id).unwrap(),
        };
        simulated_us += device.time_of_stream(&outcome.ops);
        disk.apply_all(&outcome.ops)
            .expect("the database rules must hold");

        // Crash the database every 1,000 requests and recover.
        if i % 1_000 == 999 {
            let report = disk.crash_and_recover();
            assert!(
                report.is_durable(),
                "crash at request {i} lost {} blocks!",
                report.lost.len()
            );
            crashes_survived += 1;
        }
    }

    let ratio = db.structure_size() as f64 / db.live_volume() as f64;
    println!("\n== results ==");
    println!("live blocks:            {}", db.live_count());
    println!("live volume:            {} pages", db.live_volume());
    println!(
        "disk footprint:         {} pages (ratio {ratio:.3}, bound {})",
        db.structure_size(),
        1.0 + eps
    );
    println!("flushes:                {}", db.flush_count());
    println!("checkpoints waited on:  {}", db.checkpoints_waited());
    println!("simulated device time:  {:.1} s", simulated_us / 1e6);
    println!("crashes survived:       {crashes_survived} (all blocks recovered every time)");

    // The cost-oblivious punchline: the same run, priced on other media.
    println!("\n== the same move log, priced per medium (reallocation / allocation cost) ==");
    let mut db2 = CheckpointedReallocator::new(eps);
    let ledger = run_workload(&mut db2, &trace, RunConfig::plain())
        .unwrap()
        .ledger;
    for f in storage_realloc::cost::standard_suite() {
        println!(
            "  {:>12}: {:.2}",
            f.name(),
            ledger.cost_ratio(&|w| f.cost(w))
        );
    }
    println!("\nOne algorithm, one schedule — competitive on every medium simultaneously.");
    assert!(ratio <= 1.0 + eps + 1e-9);
}
