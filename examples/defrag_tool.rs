//! A defragmentation tool built on Theorem 2.7: sort a fragmented volume's
//! objects by any key using only `(1+ε)V + ∆` working space — the naive
//! approach needs `2V`.
//!
//! ```sh
//! cargo run --release --example defrag_tool
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage_realloc::prelude::*;

fn main() {
    // A fragmented "volume": 5,000 objects with holes between them, as left
    // behind by months of churn.
    let mut rng = StdRng::seed_from_u64(7);
    let mut objects: Vec<(ObjectId, Extent)> = Vec::new();
    let mut at = 0u64;
    for i in 0..5_000u64 {
        let size = rng.random_range(1..=512);
        objects.push((ObjectId(i), Extent::new(at, size)));
        at += size + rng.random_range(0..=100); // a hole after each object
    }
    let volume: u64 = objects.iter().map(|(_, e)| e.len).sum();
    let used: u64 = objects.iter().map(|(_, e)| e.end()).max().unwrap();
    let delta: u64 = objects.iter().map(|(_, e)| e.len).max().unwrap();

    println!(
        "before: {} objects, volume {volume} cells spread over {used} cells",
        objects.len()
    );
    println!(
        "        utilization {:.1}%",
        100.0 * volume as f64 / used as f64
    );

    // Sort by object size, then id (any comparison function works —
    // access-frequency, table id, timestamp...).
    let sizes: std::collections::HashMap<ObjectId, u64> =
        objects.iter().map(|&(id, e)| (id, e.len)).collect();
    let eps = 0.25;
    let report = defragment(&objects, eps, |a, b| {
        sizes[&a].cmp(&sizes[&b]).then(a.0.cmp(&b.0))
    })
    .expect("valid input");

    println!(
        "\nafter:  objects sorted by size, packed into [{}, {})",
        report.budget - volume,
        report.budget
    );
    println!("        peak working space {} cells", report.peak_space);
    println!(
        "        theorem bound (1+ε)V + ∆ = {} cells",
        report.budget + delta
    );
    println!("        naive defrag would need 2V = {} cells", 2 * volume);
    println!(
        "        moves: {} total, {:.1} avg / {} max per object",
        report.total_moves,
        report.avg_moves_per_object(),
        report.max_moves_per_object
    );

    // Replay the schedule on a simulated store to prove it is executable.
    let mut store = SimStore::new(Mode::Relaxed);
    for &(id, e) in &objects {
        store
            .apply(&StorageOp::Allocate { id, to: e })
            .expect("seed initial allocation");
    }
    store
        .apply_all(&report.ops)
        .expect("schedule must replay cleanly");
    // Final layout really is sorted and contiguous.
    let mut prev_end = report.budget - volume;
    for (id, ext) in &report.sorted {
        assert_eq!(store.extent_of(*id), Some(*ext));
        assert_eq!(ext.offset, prev_end, "not contiguous");
        prev_end = ext.end();
    }
    assert!(report.peak_space <= report.budget + delta);
    assert!(!report.prefix_suffix_collision);

    println!(
        "\nreplayed {} ops against the simulated store: layout verified sorted,",
        report.ops.len()
    );
    println!("contiguous, and within budget. The schedule is cost-oblivious: it is");
    println!("within O((1/ε)log(1/ε)) of optimal cost on RAM, disk, and SSD alike.");
}
