//! Crash recovery of a rebalanced, WAL'd fleet: kill -9, then prove the
//! rebuild.
//!
//! Each shard worker journals every physical op and route flip to its own
//! write-ahead log, group-committing once per served batch, and each
//! quiesce barrier checkpoints the shard's live layout and truncates its
//! log. This example exercises the whole durability story end to end:
//!
//! 1. a WAL'd, substrate-backed fleet serves churn and checkpoints at a
//!    quiesce barrier;
//! 2. an **online rebalance** drains while fresh traffic lands, so the
//!    logs fill with interleaved migration frames (`MigrateOut`,
//!    `MigrateIn` + `RouteFlip`) and serving frames — none of it
//!    checkpointed;
//! 3. the fleet is crashed with [`Engine::crash`] — a simulated kill -9:
//!    threads die where they stand, nothing flushes, nothing checkpoints;
//! 4. [`Engine::recover`] folds checkpoints + log suffixes, reconciles
//!    the cross-shard migrations by transfer sequence number, re-derives
//!    the routing table from physical ownership, reseeds a fresh fleet,
//!    and byte-verifies every recovered object against its journaled
//!    digest;
//! 5. the recovered fleet is interrogated: same live set, every id on
//!    exactly one shard with routing pointing at it — then it just keeps
//!    serving.
//!
//! Run with `cargo run --release --example crash_recovery`.

use std::collections::BTreeMap;

use storage_realloc::prelude::*;

const SHARDS: usize = 3;
const EPS: f64 = 0.25;

fn factory(_shard: usize) -> Box<dyn Reallocator + Send> {
    Box::new(CostObliviousReallocator::new(EPS))
}

fn size_of(i: u64) -> u64 {
    4 + (i * 13) % 60
}

fn main() {
    let wal_dir = std::env::temp_dir().join(format!("realloc-example-{}", std::process::id()));
    let config = EngineConfig::with_shards(SHARDS).with_substrate(SubstrateConfig::default());

    // ---- 1. a WAL'd fleet under churn, checkpointed once ----------------
    let mut engine = Engine::with_wal(
        config,
        Box::new(TableRouter::new(SHARDS)),
        factory,
        &wal_dir,
    )
    .expect("open write-ahead logs");
    let mut expected = BTreeMap::new();
    for i in 0..600u64 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
        expected.insert(ObjectId(i), size_of(i));
    }
    let stats = engine.quiesce().expect("checkpoint barrier");
    println!(
        "served:    {} objects / {} cells; {} wal records in {} group commits, \
         checkpointed at the barrier",
        stats.live_count(),
        stats.live_volume(),
        stats.wal_records(),
        stats.group_commits(),
    );

    // ---- 2. an online rebalance fills the logs with migration frames ----
    // Skew the fleet first so the plan is never empty.
    let doomed: Vec<ObjectId> = expected
        .keys()
        .copied()
        .filter(|&id| engine.shard_of(id) != 0)
        .step_by(2)
        .collect();
    for id in doomed {
        engine.delete(id).unwrap();
        expected.remove(&id);
    }
    let plan = engine
        .rebalance_online(RebalanceOptions::default().batched(16))
        .expect("plan");
    let mut next = 1_000u64;
    while engine.rebalance_step().expect("bounded batch") {
        // Fresh traffic between batches: serving frames and migration
        // frames interleave in the logs, exactly like production.
        engine.insert(ObjectId(next), size_of(next)).unwrap();
        expected.insert(ObjectId(next), size_of(next));
        next += 1;
    }
    engine.flush().expect("group commit");
    println!(
        "rebalance: {} objects / {} cells re-homed in {} bounded batches, \
         journaled but NOT checkpointed",
        plan.objects, plan.volume, plan.batches
    );

    // ---- 3. kill -9 -----------------------------------------------------
    engine.crash();
    println!("crash:     simulated kill -9 — no flush, no checkpoint, threads gone");

    // ---- 4. recover from checkpoints + log suffixes ---------------------
    let (mut recovered, report) =
        Engine::recover(config, &wal_dir, factory).expect("recovery must rebuild the fleet");
    println!(
        "recover:   {} objects / {} cells rebuilt from {} checkpointed objects \
         + {} replayed records in {} groups",
        report.objects,
        report.volume,
        report.checkpoint_objects,
        report.replayed_records,
        report.replayed_groups,
    );
    println!(
        "           {} route assignments re-derived from physical ownership; \
         {} resurrected, {} duplicates dropped",
        report.route_assignments,
        report.resurrected.len(),
        report.dropped_duplicates.len(),
    );
    for r in &report.substrate {
        println!(
            "verify:    shard {} window {} — {} objects / {} cells byte-verified \
             against journaled digests",
            r.shard, r.window, r.objects, r.bytes
        );
        assert!(r.error.is_none());
    }

    // ---- 5. interrogate, then keep serving ------------------------------
    let extents = recovered.extents().expect("extents");
    let mut seen = BTreeMap::new();
    for (shard, list) in extents.iter().enumerate() {
        for &(id, e) in list {
            assert!(seen.insert(id, e.len).is_none(), "{id} live on two shards");
            assert_eq!(
                recovered.shard_of(id),
                shard,
                "{id} routed away from its physical owner"
            );
        }
    }
    assert_eq!(
        seen, expected,
        "recovered live set diverged from acked state"
    );
    let stats = recovered.quiesce().expect("recovered fleet quiesces");
    assert_eq!(stats.recoveries(), 1);
    println!(
        "proved:    live set identical to every acked request, one owner per id, \
         routing matches ownership"
    );

    for i in 0..200u64 {
        recovered.insert(ObjectId(10_000 + i), size_of(i)).unwrap();
    }
    recovered.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&wal_dir).ok();
    println!(
        "\nthe fleet kept serving after recovery and shut down cleanly: \
         an acked command is a durable command."
    );
}
