//! The scheduling interpretation (paper §1): storage reallocation is the
//! online rescheduling problem `1 | f(w) realloc | Cmax` — maintain a
//! uniprocessor schedule under job arrivals/departures, approximately
//! minimizing the makespan while paying `f(w_j)` to move job `j`.
//!
//! Addresses become start times, object sizes become processing times, the
//! footprint becomes the makespan. The reallocator plans; nothing runs.
//!
//! ```sh
//! cargo run --release --example scheduler
//! ```

use storage_realloc::prelude::*;

struct Job {
    name: &'static str,
    minutes: u64,
}

fn main() {
    let eps = 0.25;
    // The planner: makespan within (1+ε) of the total work, guaranteed.
    let mut plan = CostObliviousReallocator::new(eps);

    let jobs = [
        Job {
            name: "nightly-backup",
            minutes: 240,
        },
        Job {
            name: "etl-ingest",
            minutes: 55,
        },
        Job {
            name: "index-rebuild",
            minutes: 120,
        },
        Job {
            name: "report-gen",
            minutes: 30,
        },
        Job {
            name: "log-rotate",
            minutes: 6,
        },
        Job {
            name: "vacuum",
            minutes: 45,
        },
        Job {
            name: "ml-training",
            minutes: 380,
        },
        Job {
            name: "cache-warmup",
            minutes: 12,
        },
    ];

    println!("== submitting jobs ==");
    for (i, job) in jobs.iter().enumerate() {
        plan.insert(ObjectId(i as u64), job.minutes).unwrap();
    }
    print_schedule(&plan, &jobs);

    println!("\n== ml-training and nightly-backup cancelled ==");
    plan.delete(ObjectId(6)).unwrap();
    plan.delete(ObjectId(0)).unwrap();
    print_schedule(&plan, &jobs);

    println!("\n== a burst of small jobs arrives ==");
    for i in 0..6u64 {
        plan.insert(ObjectId(100 + i), 8 + i).unwrap();
    }
    let total: u64 = plan.live_volume();
    let makespan = plan.footprint();
    println!(
        "total work {total} min, makespan {makespan} min (bound: {:.0} min)",
        (1.0 + eps) * total as f64
    );
    assert!(plan.structure_size() as f64 <= (1.0 + eps) * total as f64 + 1e-9);

    println!(
        "\nThe rescheduling cost guarantee is cost-oblivious too: whether moving a\n\
         planned job costs clerical time (f = 1), is proportional to its length\n\
         (f = w), or needs renegotiation plus paperwork (f = a + b·w), the total\n\
         rescheduling cost is within O((1/ε)log(1/ε)) of the cost of placing each\n\
         job once — without knowing which cost regime applies."
    );
}

fn print_schedule(plan: &CostObliviousReallocator, jobs: &[Job]) {
    let mut slots: Vec<(u64, String, u64)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        if let Some(e) = plan.extent_of(ObjectId(i as u64)) {
            slots.push((e.offset, job.name.to_string(), e.len));
        }
    }
    for i in 0..20u64 {
        if let Some(e) = plan.extent_of(ObjectId(100 + i)) {
            slots.push((e.offset, format!("small-{i}"), e.len));
        }
    }
    slots.sort();
    println!("  t(min)  job              duration");
    for (start, name, len) in &slots {
        println!("  {start:>6}  {name:<16} {len:>5} min");
    }
    println!(
        "  makespan {} min for {} min of work",
        plan.footprint(),
        plan.live_volume()
    );
}
