//! A four-shard reallocation service under a grow-then-shrink trace.
//!
//! Demonstrates the point of the `realloc-engine` crate: Theorem 2.1's
//! footprint bound is per instance, so hashing objects across `N`
//! independent shards preserves it in aggregate —
//!
//! ```text
//!   Σ footprint_i  ≤  (1+ε)·Σ V_i + N·slack
//! ```
//!
//! with `slack = ∆` absorbing per-shard additive terms (the §3 variants
//! carry a `+∆`; the §2 variant needs none). The example drives a sawtooth
//! trace — grow to 60k cells, shrink back to 2k — in ten segments,
//! checking the aggregate bound at every checkpoint on the way up *and*
//! on the way down (shrinking is the regime classical allocators lose).
//!
//! Run with `cargo run --release --example sharded_service`.

use storage_realloc::prelude::*;
use storage_realloc::workloads::{dist::SizeDist, trace};

const SHARDS: usize = 4;
const EPS: f64 = 0.25;

fn main() {
    let workload = trace::sawtooth(2_000, 60_000, 1, &SizeDist::Uniform { lo: 4, hi: 256 }, 99);
    println!("workload: {} ({} requests)", workload.name, workload.len());
    println!("engine:   cost-oblivious × {SHARDS} shards, ε = {EPS}\n");

    let mut engine = Engine::new(EngineConfig::with_shards(SHARDS), |_| {
        Box::new(CostObliviousReallocator::new(EPS))
    });

    println!(
        "{:>9} {:>12} {:>12} {:>14} {:>8}",
        "requests", "Σ volume", "Σ footprint", "(1+ε)ΣV+N·∆", "margin"
    );
    let segment = workload.len().div_ceil(10);
    let mut served = 0usize;
    for chunk in workload.requests.chunks(segment) {
        engine
            .drive(&Workload::new("segment", chunk.to_vec()))
            .expect("shards healthy");
        served += chunk.len();
        let stats = engine.snapshot().expect("no request errors");

        // The aggregate footprint bound, composed from per-shard bounds.
        let volume = stats.live_volume();
        let footprint = stats.footprint();
        let slack = stats.max_object_size();
        let bound = (1.0 + EPS) * volume as f64 + (SHARDS as u64 * slack) as f64;
        assert!(
            footprint as f64 <= bound,
            "aggregate footprint {footprint} exceeds (1+ε)·{volume} + {SHARDS}·{slack}"
        );
        println!(
            "{served:>9} {volume:>12} {footprint:>12} {bound:>14.0} {:>7.1}%",
            100.0 * (bound - footprint as f64) / bound.max(1.0)
        );
    }

    let finals = engine.shutdown().expect("clean shutdown");
    println!("\nper-shard wrap-up:");
    for f in &finals {
        println!(
            "  shard {}: {} requests, {} moves, settled ratio {:.3} (bound {:.3})",
            f.stats.shard,
            f.stats.requests,
            f.stats.total_moves,
            f.stats.max_settled_ratio,
            1.0 + EPS
        );
        assert!(
            f.stats.max_settled_ratio <= 1.0 + EPS + 1e-9,
            "per-shard footprint bound violated"
        );
    }
    let total: u64 = finals.iter().map(|f| f.stats.requests).sum();
    assert_eq!(
        total as usize,
        workload.len(),
        "every request served exactly once"
    );
    println!("\naggregate footprint stayed ≤ (1+ε)·ΣV + N·∆ at every checkpoint ✓");
}
