//! A table-routed reallocation service surviving a skewed delete storm.
//!
//! The hash-routed engine keeps shard volumes balanced *on average*, but an
//! adversary (or an unlucky tenant mix) that deletes only objects routed
//! away from one shard drives `max V_i / mean V_i` toward `N` — and the
//! hash map is frozen, so nothing can fix it. This example runs that storm
//! against a `TableRouter` engine and shows the full repair loop:
//!
//! 1. skewed churn pushes the imbalance past 2×,
//! 2. `Engine::rebalance` migrates volume back to the mean (with the
//!    per-shard Theorem 2.7 defrag pass reporting its space bound),
//! 3. `Engine::resize_shards` grows the fleet 4 → 6 live (the rendezvous
//!    fallback keeps most objects in place) and shrinks it back to 3,
//! 4. the aggregate footprint bound `Σ footprint_i ≤ (1+ε)·Σ V_i + N·∆`
//!    holds at every step, and no object is ever lost.
//!
//! Run with `cargo run --release --example rebalancing_service`.

use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{skewed_churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

const SHARDS: usize = 4;
const EPS: f64 = 0.25;

fn factory(_shard: usize) -> Box<dyn Reallocator + Send> {
    Box::new(CostObliviousReallocator::new(EPS))
}

fn check_footprint(stats: &EngineStats, label: &str) {
    let bound = (1.0 + EPS) * stats.live_volume() as f64
        + (stats.shards() as u64 * stats.max_object_size()) as f64;
    assert!(
        (stats.footprint() as f64) <= bound,
        "{label}: footprint {} exceeds (1+ε)·ΣV + N·∆ = {bound:.0}",
        stats.footprint()
    );
    println!(
        "{label:<28} shards={} volume={:>7} footprint={:>7} imbalance={:.2}",
        stats.shards(),
        stats.live_volume(),
        stats.footprint(),
        stats.imbalance_ratio()
    );
}

fn main() {
    // Skew keyed to the router's own map: deletes spare shard 0's objects.
    let probe = TableRouter::new(SHARDS);
    let workload = skewed_churn(
        &ChurnConfig {
            dist: SizeDist::Uniform { lo: 4, hi: 128 },
            target_volume: 40_000,
            churn_ops: 20_000,
            seed: 4242,
        },
        |id| probe.route(id) == 0,
    );
    println!("workload: {} ({} requests)", workload.name, workload.len());
    println!("engine:   cost-oblivious × {SHARDS} shards, table router, ε = {EPS}\n");

    let mut engine = Engine::with_router(
        EngineConfig::with_shards(SHARDS),
        Box::new(TableRouter::new(SHARDS)),
        factory,
    );

    // 1. The storm: volume piles up on shard 0.
    engine.drive(&workload).expect("shards healthy");
    let skewed = engine.quiesce().expect("no request errors");
    check_footprint(&skewed, "after skewed churn");
    assert!(
        skewed.imbalance_ratio() > 2.0,
        "the storm should unbalance the fleet"
    );
    let population = skewed.live_count();

    // 2. The repair: one rebalance, defrag pass included.
    let report = engine
        .rebalance(RebalanceOptions::with_defrag(EPS))
        .expect("rebalance");
    println!(
        "\nrebalance: {} objects / {} cells migrated, {} assignments pinned",
        report.migrated_objects,
        report.migrated_volume,
        engine.router().assignments()
    );
    for d in &report.defrag {
        assert!(
            d.within_budget,
            "defrag blew its budget on shard {}",
            d.shard
        );
        println!(
            "  defrag shard {}: {} objects sorted in {} moves, peak {} ≤ budget {} + ∆",
            d.shard, d.objects, d.total_moves, d.peak_space, d.budget
        );
    }
    check_footprint(&report.after, "after rebalance");
    assert!(
        report.after.imbalance_ratio() < 1.25,
        "rebalance must equalize the fleet"
    );
    assert_eq!(report.after.live_count(), population, "no object lost");

    // 3. Live resizes, both directions.
    let grow = engine.resize_shards(6, factory).expect("grow");
    println!(
        "\nresize 4 -> 6: {} of {} objects migrated (rendezvous keeps the rest in place)",
        grow.migrated_objects, population
    );
    assert!(
        (grow.migrated_objects as usize) < population / 2,
        "a grow should re-home a minority of objects"
    );
    check_footprint(&engine.quiesce().expect("grown"), "after growing to 6");

    let shrink = engine.resize_shards(3, factory).expect("shrink");
    println!(
        "\nresize 6 -> 3: {} objects migrated off the retired shards",
        shrink.migrated_objects
    );
    check_footprint(&engine.quiesce().expect("shrunk"), "after shrinking to 3");

    // 4. Wrap up: every object is still there, on the shard that owns it.
    let extents = engine.extents().expect("extents");
    let mut survivors = 0usize;
    for (shard, list) in extents.iter().enumerate() {
        for &(id, _) in list {
            assert_eq!(engine.shard_of(id), shard, "{id} routed to a stale shard");
            survivors += 1;
        }
    }
    assert_eq!(survivors, population, "objects conserved through it all");

    let finals = engine.shutdown().expect("clean shutdown");
    let migrations: u64 = finals.iter().map(|f| f.stats.migrations_in).sum();
    println!(
        "\nshutdown: {} shard ledgers ({} live + {} retired), {migrations} migrations ledgered",
        finals.len(),
        3,
        finals.len() - 3
    );
    println!("balanced, resized, and never lost an object ✓");
}
