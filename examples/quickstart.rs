//! Quickstart: the cost-oblivious reallocator in five minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use storage_realloc::core::render::render_regions;
use storage_realloc::prelude::*;

fn main() {
    // ε = 0.25: the footprint (largest used address, including reserved
    // buffer space) never exceeds 1.25x the live volume.
    let mut realloc = CostObliviousReallocator::new(0.25);

    println!("== inserting a mixed bag of objects ==");
    let sizes = [4096u64, 128, 7, 1024, 64, 512, 9000, 33, 250, 2048];
    for (i, &size) in sizes.iter().enumerate() {
        let outcome = realloc.insert(ObjectId(i as u64), size).unwrap();
        println!(
            "insert obj#{i} ({size:>5} cells): placed at {}, {} objects moved{}",
            realloc.extent_of(ObjectId(i as u64)).unwrap(),
            outcome.move_count(),
            if outcome.flushed { " [flush]" } else { "" },
        );
    }

    println!("\n== the layout: one region per power-of-two size class ==");
    print!("{}", render_regions(&realloc.region_views(), 128));

    println!("== deleting half the objects ==");
    for i in (0..sizes.len() as u64).step_by(2) {
        realloc.delete(ObjectId(i)).unwrap();
    }
    let ratio = realloc.structure_size() as f64 / realloc.live_volume() as f64;
    println!(
        "live volume {} cells, structure {} cells -> ratio {ratio:.3} (bound 1.25)",
        realloc.live_volume(),
        realloc.structure_size()
    );
    assert!(ratio <= 1.25 + 1e-9);

    println!("\n== why \"cost oblivious\"? ==");
    println!(
        "The algorithm never asked what a move costs. Whatever the medium —\n\
         RAM (cost ~ w), disk (seek + w/bandwidth), SSD (erase blocks) — the\n\
         total reallocation cost is O((1/ε)log(1/ε)) times the unavoidable\n\
         allocation cost, for every monotone subadditive cost function at once.\n\
         Run the bench targets (cargo bench) to see those ratios measured."
    );
}
