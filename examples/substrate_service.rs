//! Substrate-backed shards: every byte is real, every transfer verified.
//!
//! The other engine examples account costs; this one makes the storage
//! *physical*. Each shard owns a byte-carrying `DataStore` over its own
//! disjoint address window (shard *i* gets `[i·2³², (i+1)·2³²)`), so:
//!
//! 1. serving replays every physical op — inserts write the object's
//!    pattern bytes, buffer flushes perform their scheduled copies,
//!    deletes free — with overlap and window containment checked on every
//!    single write;
//! 2. a skewed delete storm is repaired by an **online** rebalance whose
//!    migrations are genuine cross-address-space copies: the source reads
//!    the object's bytes out of its window, the target re-checksums them
//!    on arrival and writes exactly what was shipped;
//! 3. every quiesce barrier byte-verifies every shard (the `Quiesce`
//!    cadence), and the ledgered migrate volume is shown equal to the
//!    cells physically copied between windows;
//! 4. finally, a fault is injected: one byte of one in-flight transfer is
//!    flipped. The receiving shard refuses the damaged payload, the
//!    session aborts *after* pinning completed transfers, and routing
//!    still matches physical ownership — the paper's "names are immutable,
//!    addresses are not" contract survives a corrupted wire.
//!
//! Run with `cargo run --release --example substrate_service`.

use storage_realloc::prelude::*;

const SHARDS: usize = 4;
const EPS: f64 = 0.25;

fn factory(_shard: usize) -> Box<dyn Reallocator + Send> {
    Box::new(CostObliviousReallocator::new(EPS))
}

fn build_engine() -> Engine {
    Engine::with_router(
        EngineConfig::with_shards(SHARDS).with_substrate(SubstrateConfig::default()),
        Box::new(TableRouter::new(SHARDS)),
        factory,
    )
}

/// Loads shard 0 far above the others: insert everywhere, delete whatever
/// routes elsewhere (the classic skewed-survivor storm).
fn storm(engine: &mut Engine, ids: u64) {
    for i in 0..ids {
        engine.insert(ObjectId(i), 8 + i % 57).unwrap();
    }
    let doomed: Vec<ObjectId> = (0..ids)
        .map(ObjectId)
        .filter(|&id| engine.shard_of(id) != 0)
        .collect();
    for id in doomed {
        engine.delete(id).unwrap();
    }
}

fn main() {
    // ---- 1. a substrate-backed fleet under a skew storm -----------------
    let mut engine = build_engine();
    storm(&mut engine, 4_000);
    // This quiesce is also a fleet-wide byte verification: every shard
    // checks its store's extents against its reallocator and re-checksums
    // every live object.
    let before = engine.quiesce().expect("byte-verified quiesce");
    println!(
        "storm:     imbalance {:.2}, {} objects / {} cells live, {} cells physically written",
        before.imbalance_ratio(),
        before.live_count(),
        before.live_volume(),
        before.bytes_written(),
    );
    assert!(before.imbalance_ratio() > 2.0, "storm failed to skew");

    // ---- 2. online repair with real cross-window copies -----------------
    let plan = engine
        .rebalance_online(RebalanceOptions::default().batched(32))
        .expect("plan");
    println!(
        "plan:      {} objects / {} cells to re-home in {} bounded batches",
        plan.objects, plan.volume, plan.batches
    );
    // Fresh traffic drains the session; every dispatched batch migrates
    // one bounded batch of real bytes.
    let mut extra = 0u64;
    while engine.rebalance_active() {
        for i in 0..600 {
            engine
                .insert(ObjectId(1_000_000 + extra * 1_000 + i), 4)
                .unwrap();
        }
        extra += 1;
        assert!(extra < 100, "session never drained");
    }
    let report = engine.take_rebalance_report().expect("completed session");
    let after = engine.quiesce().expect("byte-verified quiesce");
    println!(
        "repaired:  imbalance {:.2} -> {:.2} ({} mode, {} batches)",
        report.before.imbalance_ratio(),
        report.after.imbalance_ratio(),
        report.mode,
        report.batches
    );
    assert!(report.after.imbalance_ratio() < 1.25);

    // ---- 3. physical bytes == ledgered volume ---------------------------
    println!(
        "transfers: {} cells copied out of source windows, {} adopted (checksummed) \
         — ledger says {} out / {} in",
        after.bytes_migrated_out(),
        after.bytes_migrated_in(),
        after.migrated_volume_out(),
        after.migrated_volume(),
    );
    assert_eq!(after.bytes_migrated_out(), report.migrated_volume);
    assert_eq!(after.bytes_migrated_in(), report.migrated_volume);
    for r in engine.verify_substrate().expect("verify") {
        println!(
            "verify:    shard {} window {} — {} objects / {} cells byte-verified",
            r.shard, r.window, r.objects, r.bytes
        );
        assert!(r.error.is_none());
    }
    engine.shutdown().expect("clean shutdown");

    // ---- 4. a corrupted transfer cannot slip through --------------------
    let mut engine = build_engine();
    storm(&mut engine, 1_000);
    let before = engine.quiesce().expect("quiesce");
    engine
        .rebalance_online(RebalanceOptions::default().batched(8))
        .expect("plan");
    engine.rebalance_step().expect("first batch lands clean");
    engine.inject_transfer_corruption(); // flip one byte in flight
    let err = loop {
        match engine.rebalance_step() {
            Ok(true) => {}
            Ok(false) => unreachable!("a damaged transfer must not be adopted"),
            Err(err) => break err,
        }
    };
    println!("fault:     {err}");
    assert!(matches!(
        err,
        EngineError::Request {
            error: ReallocError::CorruptTransfer(_),
            ..
        }
    ));
    // The session aborted with completed transfers pinned: every survivor
    // routes to the shard that physically owns it, bytes intact.
    let extents = engine.extents().expect("extents");
    let mut survivors = 0usize;
    for (shard, list) in extents.iter().enumerate() {
        for &(id, _) in list {
            assert_eq!(engine.shard_of(id), shard, "{id} routed to a stale shard");
            survivors += 1;
        }
    }
    assert_eq!(
        survivors,
        before.live_count() - 1,
        "exactly one object lost"
    );
    for r in engine.verify_substrate().expect("verify") {
        assert!(r.error.is_none(), "surviving bytes must verify");
    }
    println!(
        "aborted:   exactly 1 object refused, {} survivors all routed to their \
         physical owners, bytes verified — routing never desyncs",
        survivors
    );
    println!(
        "\nevery byte accounted for: the sharded path now runs the same \
             data-integrity rules as the unsharded harness."
    );
}
